//! Functional split-counter state (paper Fig. 4 organization).
//!
//! Each group of 32 data sectors shares a 32-bit *major* counter and has a
//! 7-bit *minor* counter per sector; the encryption tweak uses
//! `major << 7 | minor`. When a minor overflows, the group's major is
//! incremented, every minor resets, and all sectors in the group must be
//! re-encrypted under the new counters — the classic split-counter overflow
//! cost, surfaced to the engine via [`IncrementOutcome::GroupOverflow`].

use crate::layout::SECTORS_PER_COUNTER_GROUP;
use gpu_sim::SectorAddr;
use std::collections::HashMap;

/// Minor counter width in bits.
pub const MINOR_BITS: u32 = 7;
/// Maximum minor counter value before a group overflow.
pub const MINOR_MAX: u8 = (1 << MINOR_BITS) - 1;

/// Result of incrementing a sector's write counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrementOutcome {
    /// The minor counter incremented normally; the tweak counter is given.
    Normal {
        /// New combined counter value for the written sector.
        new_value: u64,
    },
    /// The minor overflowed: the major was bumped and all minors reset.
    /// Every sector in the group must be re-encrypted with counter
    /// `new_value` (major′ << 7).
    GroupOverflow {
        /// New combined counter value now shared by the whole group.
        new_value: u64,
        /// Counter values each group member had *before* the overflow,
        /// indexed by position in the group (needed to decrypt for
        /// re-encryption).
        old_values: Vec<u64>,
    },
}

/// Functional storage for encryption counters (split-sectored by default,
/// SGX-style monolithic as the comparison organization).
#[derive(Debug, Clone)]
pub struct CounterStore {
    org: crate::config::CounterOrg,
    majors: HashMap<u64, u32>,
    minors: HashMap<u64, u8>,
    monolithic: HashMap<u64, u64>,
}

impl Default for CounterStore {
    fn default() -> Self {
        Self::with_org(crate::config::CounterOrg::SplitSectored)
    }
}

impl CounterStore {
    /// Creates an empty split-sectored store (all counters zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with the given organization.
    pub fn with_org(org: crate::config::CounterOrg) -> Self {
        Self {
            org,
            majors: HashMap::new(),
            minors: HashMap::new(),
            monolithic: HashMap::new(),
        }
    }

    fn group_of(&self, sector: SectorAddr) -> u64 {
        sector.index() / self.org.sectors_per_group()
    }

    /// Combined tweak-counter value of `sector`.
    pub fn value(&self, sector: SectorAddr) -> u64 {
        match self.org {
            crate::config::CounterOrg::Monolithic => {
                *self.monolithic.get(&sector.index()).unwrap_or(&0)
            }
            crate::config::CounterOrg::SplitSectored => {
                let major = *self.majors.get(&self.group_of(sector)).unwrap_or(&0);
                let minor = *self.minors.get(&sector.index()).unwrap_or(&0);
                (u64::from(major) << MINOR_BITS) | u64::from(minor)
            }
        }
    }

    /// Major counter of `sector`'s group (split organization).
    pub fn major(&self, sector: SectorAddr) -> u32 {
        *self.majors.get(&self.group_of(sector)).unwrap_or(&0)
    }

    /// Minor counter of `sector`.
    pub fn minor(&self, sector: SectorAddr) -> u8 {
        *self.minors.get(&sector.index()).unwrap_or(&0)
    }

    /// Increments `sector`'s counter for a write, handling group overflow.
    pub fn increment(&mut self, sector: SectorAddr) -> IncrementOutcome {
        if self.org == crate::config::CounterOrg::Monolithic {
            let v = self.monolithic.entry(sector.index()).or_insert(0);
            *v += 1;
            return IncrementOutcome::Normal { new_value: *v };
        }
        let group = self.group_of(sector);
        let minor = self.minors.entry(sector.index()).or_insert(0);
        if *minor < MINOR_MAX {
            *minor += 1;
            return IncrementOutcome::Normal {
                new_value: self.value(sector),
            };
        }
        // Overflow: capture old values, bump major, clear minors.
        let major = *self.majors.get(&group).unwrap_or(&0);
        let base = group * SECTORS_PER_COUNTER_GROUP;
        let old_values = (0..SECTORS_PER_COUNTER_GROUP)
            .map(|i| {
                let minor = *self.minors.get(&(base + i)).unwrap_or(&0);
                (u64::from(major) << MINOR_BITS) | u64::from(minor)
            })
            .collect();
        let new_major = major.checked_add(1).expect("major counter exhausted");
        self.majors.insert(group, new_major);
        for i in 0..SECTORS_PER_COUNTER_GROUP {
            self.minors.insert(base + i, 0);
        }
        IncrementOutcome::GroupOverflow {
            new_value: u64::from(new_major) << MINOR_BITS,
            old_values,
        }
    }

    /// Serializes the counter sector of `sector`'s group for BMT leaf
    /// hashing: major (LE) followed by the 32 minor bytes (split), or the
    /// four 64-bit counters (monolithic).
    pub fn serialize_group(&self, group: u64) -> Vec<u8> {
        let per = self.org.sectors_per_group();
        let base = group * per;
        match self.org {
            crate::config::CounterOrg::Monolithic => {
                let mut out = Vec::with_capacity(8 * per as usize);
                for i in 0..per {
                    out.extend_from_slice(
                        &self.monolithic.get(&(base + i)).unwrap_or(&0).to_le_bytes(),
                    );
                }
                out
            }
            crate::config::CounterOrg::SplitSectored => {
                let major = *self.majors.get(&group).unwrap_or(&0);
                let mut out = Vec::with_capacity(4 + per as usize);
                out.extend_from_slice(&major.to_le_bytes());
                for i in 0..per {
                    out.push(*self.minors.get(&(base + i)).unwrap_or(&0));
                }
                out
            }
        }
    }

    /// Raises `sector`'s minor counter to exactly `value` (used when a
    /// Plutus compact counter saturates and its value is propagated to the
    /// original copy). The counter must not move backwards.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds the minor range or would decrease the
    /// sector's current minor.
    pub fn set_minor(&mut self, sector: SectorAddr, value: u8) {
        assert_eq!(
            self.org,
            crate::config::CounterOrg::SplitSectored,
            "compact-counter propagation requires the split organization"
        );
        assert!(value <= MINOR_MAX, "minor {value} out of range");
        let cur = self.minor(sector);
        assert!(
            value >= cur,
            "counter must not move backwards ({cur} -> {value})"
        );
        self.minors.insert(sector.index(), value);
    }

    /// Crash-recovery hook: overwrite `sector`'s counter with a value
    /// proven correct against a persistent MAC (Phoenix-style probing).
    ///
    /// Unlike [`CounterStore::set_minor`] this may move the *combined*
    /// value in either direction: after a crash the reverted checkpoint
    /// state can sit above or below the true value once a neighbouring
    /// sector has already restored the group's shared major. Callers must
    /// only pass MAC-verified values.
    pub fn restore(&mut self, sector: SectorAddr, value: u64) {
        match self.org {
            crate::config::CounterOrg::Monolithic => {
                self.monolithic.insert(sector.index(), value);
            }
            crate::config::CounterOrg::SplitSectored => {
                let major = u32::try_from(value >> MINOR_BITS)
                    .expect("recovered counter exceeds the 32-bit major range");
                self.majors.insert(self.group_of(sector), major);
                self.minors
                    .insert(sector.index(), (value & u64::from(MINOR_MAX)) as u8);
            }
        }
    }

    /// Lowest combined value a crash-recovery probe for `sector` must
    /// consider: the current value with the minor cleared (split — a group
    /// overflow since the checkpoint zeroed every minor, so the true value
    /// can sit *below* `value | minor`), or the current value itself
    /// (monolithic — strictly increasing per sector).
    pub fn recovery_floor(&self, sector: SectorAddr) -> u64 {
        match self.org {
            crate::config::CounterOrg::Monolithic => self.value(sector),
            crate::config::CounterOrg::SplitSectored => self.value(sector) & !u64::from(MINOR_MAX),
        }
    }

    /// Attack hook: overwrite `sector`'s counter without touching the
    /// integrity tree (models tampering with the counter block in DRAM).
    pub fn tamper_minor(&mut self, sector: SectorAddr, value: u8) {
        match self.org {
            crate::config::CounterOrg::Monolithic => {
                self.monolithic.insert(sector.index(), u64::from(value));
            }
            crate::config::CounterOrg::SplitSectored => {
                self.minors.insert(sector.index(), value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn counters_start_at_zero() {
        let c = CounterStore::new();
        assert_eq!(c.value(s(0)), 0);
        assert_eq!(c.major(s(0)), 0);
        assert_eq!(c.minor(s(0)), 0);
    }

    #[test]
    fn increment_bumps_minor() {
        let mut c = CounterStore::new();
        match c.increment(s(5)) {
            IncrementOutcome::Normal { new_value } => assert_eq!(new_value, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.value(s(5)), 1);
        // Neighbors unaffected.
        assert_eq!(c.value(s(6)), 0);
    }

    #[test]
    fn group_members_share_major() {
        let mut c = CounterStore::new();
        // Overflow sector 0's minor.
        for _ in 0..=MINOR_MAX {
            c.increment(s(0));
        }
        // Sector 0 overflowed the group: all members see the new major.
        assert_eq!(c.major(s(0)), 1);
        assert_eq!(c.major(s(31)), 1);
        assert_eq!(c.minor(s(31)), 0);
        // But a different group is untouched.
        assert_eq!(c.major(s(32)), 0);
    }

    #[test]
    fn overflow_reports_old_values() {
        let mut c = CounterStore::new();
        c.increment(s(1)); // sector 1 minor = 1
        for _ in 0..MINOR_MAX {
            c.increment(s(0)); // sector 0 minor = 127
        }
        match c.increment(s(0)) {
            IncrementOutcome::GroupOverflow {
                new_value,
                old_values,
            } => {
                assert_eq!(new_value, 1 << MINOR_BITS);
                assert_eq!(old_values.len(), 32);
                assert_eq!(old_values[0], u64::from(MINOR_MAX));
                assert_eq!(old_values[1], 1);
                assert_eq!(old_values[2], 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Post-overflow values: major 1, minors 0.
        assert_eq!(c.value(s(0)), 128);
        assert_eq!(c.value(s(1)), 128);
    }

    #[test]
    fn values_never_repeat_across_overflow() {
        // The combined counter is strictly increasing for a given sector.
        let mut c = CounterStore::new();
        let mut last = c.value(s(0));
        for _ in 0..300 {
            c.increment(s(0));
            let v = c.value(s(0));
            assert!(v > last, "counter value repeated: {v} after {last}");
            last = v;
        }
    }

    #[test]
    fn serialize_group_reflects_state() {
        let mut c = CounterStore::new();
        let before = c.serialize_group(0);
        c.increment(s(3));
        let after = c.serialize_group(0);
        assert_ne!(before, after);
        assert_eq!(after.len(), 36);
        assert_eq!(after[4 + 3], 1);
    }

    #[test]
    fn monolithic_counters_increment_independently() {
        let mut c = CounterStore::with_org(crate::config::CounterOrg::Monolithic);
        for _ in 0..200 {
            c.increment(s(0));
        }
        assert_eq!(c.value(s(0)), 200);
        // No group sharing: the neighbor is untouched even past 128.
        assert_eq!(c.value(s(1)), 0);
        // And no overflow outcome ever fires.
        assert!(matches!(
            c.increment(s(0)),
            IncrementOutcome::Normal { new_value: 201 }
        ));
    }

    #[test]
    fn monolithic_serialization_covers_four_sectors() {
        let mut c = CounterStore::with_org(crate::config::CounterOrg::Monolithic);
        c.increment(s(1));
        let bytes = c.serialize_group(0);
        assert_eq!(bytes.len(), 32, "4 × 64-bit counters fill the 32 B sector");
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 1);
    }

    #[test]
    #[should_panic(expected = "split organization")]
    fn set_minor_rejects_monolithic() {
        let mut c = CounterStore::with_org(crate::config::CounterOrg::Monolithic);
        c.set_minor(s(0), 3);
    }

    #[test]
    fn restore_overwrites_split_major_and_minor() {
        let mut c = CounterStore::new();
        c.restore(s(3), (5 << MINOR_BITS) | 9);
        assert_eq!(c.major(s(3)), 5);
        assert_eq!(c.minor(s(3)), 9);
        assert_eq!(c.value(s(3)), (5 << MINOR_BITS) | 9);
        // The group-shared major moved for neighbours too.
        assert_eq!(c.major(s(4)), 5);
    }

    #[test]
    fn restore_overwrites_monolithic_value() {
        let mut c = CounterStore::with_org(crate::config::CounterOrg::Monolithic);
        c.restore(s(2), 7777);
        assert_eq!(c.value(s(2)), 7777);
    }

    #[test]
    fn recovery_floor_clears_minor_for_split() {
        let mut c = CounterStore::new();
        c.restore(s(0), (3 << MINOR_BITS) | 42);
        assert_eq!(c.recovery_floor(s(0)), 3 << MINOR_BITS);
        let mut m = CounterStore::with_org(crate::config::CounterOrg::Monolithic);
        m.restore(s(0), 42);
        assert_eq!(m.recovery_floor(s(0)), 42);
    }

    #[test]
    fn tamper_changes_serialization() {
        let mut c = CounterStore::new();
        c.increment(s(0));
        let honest = c.serialize_group(0);
        c.tamper_minor(s(0), 99);
        assert_ne!(c.serialize_group(0), honest);
    }
}
