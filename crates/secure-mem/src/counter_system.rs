//! The counter subsystem: split-counter store + sectored counter cache +
//! BMT, composed behind one interface used by every engine.

use crate::bmt::{Bmt, Walk};
use crate::config::SecureMemConfig;
use crate::counter_store::{CounterStore, IncrementOutcome};
use crate::layout::Layout;
use gpu_sim::cache::SectoredCache;
use gpu_sim::{DramReq, SectorAddr, TrafficClass, Violation, SECTOR_SIZE};
use plutus_telemetry::{Event, Telemetry};

/// Everything an engine needs from one counter operation.
#[derive(Debug, Clone, Default)]
pub struct CounterAccess {
    /// The sector's (post-increment, for writes) tweak counter value.
    pub value: u64,
    /// Whether the counter sector was already cached.
    pub hit: bool,
    /// Critical-path reads: counter fetch followed by BMT verification
    /// nodes, sequential.
    pub chain: Vec<DramReq>,
    /// Non-critical reads (lazy-update RMW fetches).
    pub async_reads: Vec<DramReq>,
    /// Metadata writebacks (evicted dirty counter sectors / tree nodes).
    pub writes: Vec<DramReq>,
    /// Counter-integrity violation, if verification failed.
    pub violation: Option<Violation>,
    /// On a split-counter group overflow: the *previous* counter value of
    /// each sector in the group, which the engine must use to re-encrypt.
    pub overflow_old_values: Option<Vec<u64>>,
}

impl CounterAccess {
    fn absorb(&mut self, walk: Walk) {
        self.chain.extend(walk.chain);
        self.async_reads.extend(walk.async_reads);
        self.writes.extend(walk.writes);
        if self.violation.is_none() {
            self.violation = walk.violation;
        }
    }
}

/// Counter cache + store + integrity tree.
#[derive(Debug, Clone)]
pub struct CounterSystem {
    layout: Layout,
    store: CounterStore,
    cache: SectoredCache,
    bmt: Bmt,
    hits: u64,
    misses: u64,
    tel: Telemetry,
}

impl CounterSystem {
    /// Builds the subsystem from the configuration.
    pub fn new(cfg: &SecureMemConfig) -> Self {
        let layout = Layout::new(cfg);
        Self {
            bmt: Bmt::new(cfg, layout.clone()),
            cache: SectoredCache::new(
                cfg.meta_cache_bytes,
                cfg.meta_cache_ways,
                cfg.ctr_cache_line(),
                false,
            ),
            store: CounterStore::with_org(cfg.counter_org),
            layout,
            hits: 0,
            misses: 0,
            tel: Telemetry::disabled(),
        }
    }

    /// Mirrors the counter cache into `tel` (`ctr_cache.hits`/`.misses`),
    /// forwards to the BMT, and emits [`Event::CounterFetch`] on misses.
    pub fn attach_telemetry(&mut self, tel: &Telemetry) {
        self.cache.attach_telemetry(tel, "ctr_cache");
        self.bmt.attach_telemetry(tel, "bmt");
        self.tel = tel.clone();
    }

    /// The metadata layout in use.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Current counter value without generating any traffic (for install
    /// and for schemes that keep the counter on-chip).
    pub fn peek_value(&self, sector: SectorAddr) -> u64 {
        self.store.value(sector)
    }

    /// Ensures `sector`'s counter is on-chip and verified; returns its
    /// value plus the timing plan.
    pub fn read(&mut self, sector: SectorAddr) -> CounterAccess {
        let mut out = CounterAccess::default();
        self.ensure_present(sector, &mut out);
        out.value = self.store.value(sector);
        out
    }

    /// Increments `sector`'s counter for a write (fetching and verifying it
    /// first if absent), propagating group overflow.
    pub fn increment(&mut self, sector: SectorAddr) -> CounterAccess {
        let mut out = CounterAccess::default();
        self.ensure_present(sector, &mut out);
        // Mark the counter sector dirty (lazy BMT update happens when it is
        // evicted).
        self.cache
            .access(self.layout.ctr_sector_addr(sector), true, None);
        let outcome = self.store.increment(sector);
        let leaf = self.layout.leaf_of(self.layout.ctr_fetch_addr(sector));
        let new_hash = self.bmt.recompute_leaf(leaf, &self.store);
        self.bmt.set_leaf(leaf, new_hash);
        match outcome {
            IncrementOutcome::Normal { new_value } => out.value = new_value,
            IncrementOutcome::GroupOverflow {
                new_value,
                old_values,
            } => {
                out.value = new_value;
                out.overflow_old_values = Some(old_values);
            }
        }
        out
    }

    /// Raises `sector`'s counter to exactly `value` (compact-counter
    /// propagation), fetching and verifying the counter sector first if
    /// absent. `value` must fit the minor range and not decrease the
    /// counter.
    ///
    /// # Panics
    ///
    /// Panics if the propagation would move the counter backwards.
    pub fn raise_to(&mut self, sector: SectorAddr, value: u8) -> CounterAccess {
        let mut out = CounterAccess::default();
        self.ensure_present(sector, &mut out);
        self.cache
            .access(self.layout.ctr_sector_addr(sector), true, None);
        self.store.set_minor(sector, value);
        let leaf = self.layout.leaf_of(self.layout.ctr_fetch_addr(sector));
        let new_hash = self.bmt.recompute_leaf(leaf, &self.store);
        self.bmt.set_leaf(leaf, new_hash);
        out.value = self.store.value(sector);
        out
    }

    fn ensure_present(&mut self, sector: SectorAddr, out: &mut CounterAccess) {
        let ctr_sec = self.layout.ctr_sector_addr(sector);
        if self.cache.probe(ctr_sec) {
            self.cache.access(ctr_sec, false, None);
            self.hits += 1;
            out.hit = true;
            return;
        }
        self.misses += 1;
        let fetch_addr = self.layout.ctr_fetch_addr(sector);
        let fetch_bytes = self.layout.ctr_fetch_bytes();
        if self.tel.enabled() {
            self.tel.event(Event::CounterFetch { addr: fetch_addr });
        }
        out.chain.push(DramReq::new(
            fetch_addr,
            fetch_bytes as u32,
            TrafficClass::Counter,
        ));
        // Install every 32 B piece of the fetch unit, writing back any
        // dirty counter sectors displaced and lazily propagating their
        // leaf updates into the tree.
        for p in 0..fetch_bytes / SECTOR_SIZE {
            let outcome = self.cache.access(fetch_addr + p * SECTOR_SIZE, false, None);
            for ev in outcome.evicted {
                out.writes.push(DramReq::new(
                    ev.addr,
                    SECTOR_SIZE as u32,
                    TrafficClass::Counter,
                ));
                let ev_leaf = self.layout.leaf_of(ev.addr);
                let walk = self.bmt.touch_leaf_parent(ev_leaf);
                out.absorb(walk);
            }
        }
        let leaf = self.layout.leaf_of(fetch_addr);
        let walk = self.bmt.verify(leaf, &self.store, sector);
        out.absorb(walk);
    }

    /// Crash-recovery hook: overwrite `sector`'s counter with a
    /// MAC-verified value and rebuild the covering BMT leaf so subsequent
    /// verifications pass. Generates no DRAM traffic — recovery cost is
    /// accounted by the recovery harness, not the timing model.
    pub fn restore_value(&mut self, sector: SectorAddr, value: u64) {
        self.store.restore(sector, value);
        let leaf = self.layout.leaf_of(self.layout.ctr_fetch_addr(sector));
        let new_hash = self.bmt.recompute_leaf(leaf, &self.store);
        self.bmt.set_leaf(leaf, new_hash);
    }

    /// Lowest counter value a crash-recovery probe for `sector` must
    /// consider (see [`CounterStore::recovery_floor`]).
    pub fn recovery_floor(&self, sector: SectorAddr) -> u64 {
        self.store.recovery_floor(sector)
    }

    /// Attack hook: tamper with the stored minor counter of `sector`.
    /// Returns `false` when `value` equals the current counter (a
    /// rollback to the present value changes nothing).
    pub fn tamper_minor(&mut self, sector: SectorAddr, value: u8) -> bool {
        let before = self.store.value(sector);
        self.store.tamper_minor(sector, value);
        self.store.value(sector) != before
    }

    /// Attack hook: corrupts the stored BMT leaf covering `sector`'s
    /// counter fetch unit. Detected on the next counter-cache miss that
    /// re-verifies the leaf.
    pub fn tamper_bmt(&mut self, sector: SectorAddr) {
        let leaf = self.layout.leaf_of(self.layout.ctr_fetch_addr(sector));
        self.bmt.tamper_leaf(leaf);
    }

    /// `(counter-cache hits, misses, bmt node fetches, bmt node hits)`.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let (f, h) = self.bmt.stats();
        (self.hits, self.misses, f, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> CounterSystem {
        CounterSystem::new(&SecureMemConfig::test_small())
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn first_read_misses_and_fetches_chain() {
        let mut s = sys();
        let a = s.read(sector(0));
        assert!(!a.hit);
        assert_eq!(a.value, 0);
        // Counter fetch + one BMT level (test_small has 2 levels, root
        // on-chip).
        assert_eq!(a.chain.len(), 2);
        assert_eq!(a.chain[0].class, TrafficClass::Counter);
        assert_eq!(a.chain[1].class, TrafficClass::BmtNode);
        assert!(a.violation.is_none());
    }

    #[test]
    fn second_read_hits() {
        let mut s = sys();
        s.read(sector(0));
        let a = s.read(sector(0));
        assert!(a.hit);
        assert!(a.chain.is_empty());
    }

    #[test]
    fn same_fetch_unit_hits_across_sectors() {
        let mut s = sys();
        s.read(sector(0));
        // Sector 31 shares the counter sector (group 0) with sector 0.
        let a = s.read(sector(31));
        assert!(a.hit);
        // Group 1 (sector 32) shares the 128 B fetch unit → also cached.
        let b = s.read(sector(32));
        assert!(b.hit, "128B fetch unit spans 4 groups");
        // Group 4 (sector 128) is a different fetch unit.
        let c = s.read(sector(128));
        assert!(!c.hit);
    }

    #[test]
    fn increment_then_read_verifies() {
        let mut s = sys();
        let w = s.increment(sector(5));
        assert_eq!(w.value, 1);
        assert!(w.violation.is_none());
        let r = s.read(sector(5));
        assert_eq!(r.value, 1);
        assert!(r.violation.is_none());
    }

    #[test]
    fn eviction_then_reload_still_verifies() {
        // Cycle enough distinct counter fetch units through the 2 KiB cache
        // to evict the dirty one, then reload and verify it.
        let mut s = sys();
        s.increment(sector(5));
        // 2 KiB / 128 B lines = 16 lines; touch 64 distinct units: each
        // unit covers 4 KiB of data → stride data sectors by 128.
        let mut wrote_back = false;
        for i in 1..64 {
            let a = s.read(sector(i * 128));
            wrote_back |= a.writes.iter().any(|w| w.class == TrafficClass::Counter);
        }
        assert!(
            wrote_back,
            "dirty counter sector must be written back on eviction"
        );
        let r = s.read(sector(5));
        assert!(!r.hit);
        assert_eq!(r.value, 1);
        assert!(
            r.violation.is_none(),
            "reloaded counter must verify against the tree"
        );
    }

    #[test]
    fn rollback_attack_detected() {
        let mut s = sys();
        s.increment(sector(9));
        s.increment(sector(9));
        // Evict so the next access re-verifies.
        for i in 1..64 {
            s.read(sector(i * 128));
        }
        s.tamper_minor(sector(9), 1); // roll back 2 → 1
        let r = s.read(sector(9));
        assert!(matches!(r.violation, Some(Violation::TreeMismatch { .. })));
    }

    #[test]
    fn group_overflow_surfaces_old_values() {
        let mut s = sys();
        for _ in 0..127 {
            s.increment(sector(0));
        }
        let last = s.increment(sector(0));
        let old = last
            .overflow_old_values
            .expect("128th write overflows the 7-bit minor");
        assert_eq!(old.len(), 32);
        assert_eq!(old[0], 127);
        assert_eq!(last.value, 128);
        // Neighbors now share the new major.
        assert_eq!(s.peek_value(sector(1)), 128);
    }

    #[test]
    fn fine_grain_fetch_only_loads_one_group() {
        let cfg = SecureMemConfig {
            ctr_fetch_bytes: 32,
            bmt_node_bytes: 32,
            ..SecureMemConfig::test_small()
        };
        let mut s = CounterSystem::new(&cfg);
        let a = s.read(sector(0));
        assert_eq!(a.chain[0].bytes, 32, "fine-grain design fetches 32B");
        // Next group is *not* resident now.
        let b = s.read(sector(32));
        assert!(!b.hit);
    }

    #[test]
    fn restore_value_rebuilds_leaf_so_reload_verifies() {
        let mut s = sys();
        s.increment(sector(9));
        // Simulate a crash-reverted counter: roll it forward via restore.
        s.restore_value(sector(9), 5);
        assert_eq!(s.peek_value(sector(9)), 5);
        // Evict so the next access re-verifies against the rebuilt leaf.
        for i in 1..64 {
            s.read(sector(i * 128));
        }
        let r = s.read(sector(9));
        assert_eq!(r.value, 5);
        assert!(
            r.violation.is_none(),
            "restored counter must verify against the rebuilt tree"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut s = sys();
        s.read(sector(0));
        s.read(sector(0));
        let (hits, misses, fetches, _) = s.stats();
        assert_eq!((hits, misses), (1, 1));
        assert!(fetches >= 1);
    }
}
