//! The PSSM baseline engine (Yuan et al., the paper's Section II-B
//! baseline): partitioned, sectored security metadata with counter-mode
//! encryption, per-sector MACs, and a Bonsai Merkle Tree over the counters.
//!
//! The same engine also realizes the paper's Fig. 14/16 metadata-granularity
//! design points (via [`SecureMemConfig::fine_leaf_coarse_tree`] /
//! [`SecureMemConfig::all_32`]) and the Fig. 20 no-tree mode
//! (`disable_tree`), since those vary only the configuration.

use crate::cipher::DataCipher;
use crate::config::SecureMemConfig;
use crate::counter_system::CounterSystem;
use crate::error::SecureMemError;
use crate::mac_system::MacSystem;
use gpu_sim::{
    BackingMemory, EngineFactory, FillPlan, MetaFault, RecoveryError, RecoveryReport, SectorAddr,
    SecurityEngine, Violation, WritePlan,
};

/// Upper bound on counter candidates probed per sector during Phoenix-style
/// crash recovery (128 group overflows past the checkpointed value).
const RECOVERY_PROBE_BOUND: u64 = 1 << 14;

/// How one sector's counter was settled during crash recovery.
enum Probe {
    /// The checkpointed counter already verifies against the MAC.
    Consistent,
    /// A higher/rebased candidate verified; carries the proven value.
    Verified(u64),
    /// No candidate within [`RECOVERY_PROBE_BOUND`] verified.
    Failed,
}

/// The PSSM secure-memory engine (one per partition).
#[derive(Debug, Clone)]
pub struct PssmEngine {
    cfg: SecureMemConfig,
    cipher: DataCipher,
    counters: CounterSystem,
    macs: MacSystem,
    fills: u64,
    writebacks: u64,
    overflows: u64,
}

impl PssmEngine {
    /// Builds an engine from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: SecureMemConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds an engine from `cfg`, returning a typed error instead of
    /// panicking when the configuration is invalid (the CLI path).
    pub fn try_new(cfg: SecureMemConfig) -> Result<Self, SecureMemError> {
        cfg.validate()
            .map_err(|reason| SecureMemError::InvalidConfig { reason })?;
        Ok(Self {
            cipher: DataCipher::new(&cfg),
            counters: CounterSystem::new(&cfg),
            macs: MacSystem::new(&cfg),
            cfg,
            fills: 0,
            writebacks: 0,
            overflows: 0,
        })
    }

    /// An [`EngineFactory`] producing one engine per partition.
    pub fn factory(cfg: SecureMemConfig) -> PssmFactory {
        PssmFactory { cfg }
    }

    /// The counter subsystem, read-only.
    pub fn counters(&self) -> &CounterSystem {
        &self.counters
    }

    /// The counter subsystem (attack hooks and stats live here).
    pub fn counters_mut(&mut self) -> &mut CounterSystem {
        &mut self.counters
    }

    /// The MAC subsystem.
    pub fn macs_mut(&mut self) -> &mut MacSystem {
        &mut self.macs
    }

    /// The configured crypto latencies.
    pub fn latencies(&self) -> gpu_sim::SecurityLatencies {
        self.cfg.latencies
    }

    /// Serves a fill whose counter value is already known on-chip (used by
    /// Common Counters for clean regions and by Plutus for unsaturated
    /// compact counters): no counter fetch, no BMT walk — only the MAC path.
    pub fn fill_with_known_counter(
        &mut self,
        addr: SectorAddr,
        ctr: u64,
        mem: &mut BackingMemory,
    ) -> FillPlan {
        self.fills += 1;
        let mut plan = FillPlan::default();
        let ma = self.macs.read(addr);
        if !ma.chain.is_empty() {
            plan.pre_chains.push(ma.chain);
        }
        plan.writes.extend(ma.writes);
        let plaintext = self.read_plaintext(addr, ctr, mem);
        if !self.macs.verify(addr, &plaintext, ctr) {
            plan.violation = Some(Violation::MacMismatch { addr });
        }
        plan.plaintext = plaintext;
        let lat = self.cfg.latencies;
        plan.crypto_latency = lat.mac_latency
            + if self.cipher.overlaps_fetch() {
                0
            } else {
                lat.aes_latency
            };
        plan
    }

    /// Decrypts (functionally) what memory holds for `sector` under
    /// counter `ctr`.
    fn read_plaintext(&self, sector: SectorAddr, ctr: u64, mem: &BackingMemory) -> [u8; 32] {
        match mem.read(sector) {
            Some(mut ct) => {
                self.cipher.decrypt(&mut ct, sector, ctr);
                ct
            }
            None => [0; 32], // zero-initialized device memory
        }
    }

    /// Re-encrypts every resident sector of an overflowed counter group
    /// under the shared new counter, refreshing MACs; returns the extra
    /// traffic as `(reads, writes)` sector counts.
    fn reencrypt_group(
        &mut self,
        written: SectorAddr,
        old_values: &[u64],
        new_value: u64,
        mem: &mut BackingMemory,
        plan: &mut WritePlan,
    ) {
        self.overflows += 1;
        let group = self.counters.layout().group_of(written);
        let first = self.counters.layout().group_first_sector(group);
        for (i, old) in old_values.iter().enumerate() {
            let sector = SectorAddr::new(first.raw() + (i as u64) * 32);
            if sector == written {
                continue; // the triggering sector is re-encrypted by the caller
            }
            let Some(mut data) = mem.read(sector) else {
                continue;
            };
            self.cipher.decrypt(&mut data, sector, *old);
            let plaintext = data;
            let mut ct = plaintext;
            self.cipher.encrypt(&mut ct, sector, new_value);
            mem.write(sector, ct);
            self.macs.update_silently(sector, &plaintext, new_value);
            plan.async_reads.push(gpu_sim::DramReq::new(
                sector.raw(),
                32,
                gpu_sim::TrafficClass::Data,
            ));
            plan.writes.push(gpu_sim::DramReq::new(
                sector.raw(),
                32,
                gpu_sim::TrafficClass::Data,
            ));
        }
    }

    /// Crash-revert core, shared with wrapper engines: adopt the
    /// checkpoint's volatile metadata (counters, BMT, caches) while keeping
    /// this crashed engine's MAC store — MACs are modeled write-through
    /// persistent, so they survive the crash and anchor Phoenix recovery.
    pub(crate) fn revert_keeping_macs(&mut self, checkpoint: &PssmEngine) {
        let persistent_macs = self.macs.clone();
        *self = checkpoint.clone();
        self.macs = persistent_macs;
    }

    /// Phoenix-style counter probe for one sector: try the current
    /// (checkpoint-reverted) value first, then scan upward from the
    /// recovery floor until a candidate decrypts to plaintext that verifies
    /// against the persistent MAC.
    fn probe_counter(&self, addr: SectorAddr, mem: &BackingMemory) -> Probe {
        let cur = self.counters.peek_value(addr);
        let pt = self.read_plaintext(addr, cur, mem);
        if self.macs.verify(addr, &pt, cur) {
            return Probe::Consistent;
        }
        // The floor clears the minor: a group overflow since the checkpoint
        // zeroes every minor, so the true value can sit below `cur` once a
        // neighbour has already restored the group's shared major.
        let base = self.counters.recovery_floor(addr);
        for v in base..base.saturating_add(RECOVERY_PROBE_BOUND) {
            if v == cur {
                continue;
            }
            let pt = self.read_plaintext(addr, v, mem);
            if self.macs.verify(addr, &pt, v) {
                return Probe::Verified(v);
            }
        }
        Probe::Failed
    }
}

impl SecurityEngine for PssmEngine {
    fn name(&self) -> &'static str {
        "pssm"
    }

    fn install(&mut self, addr: SectorAddr, plaintext: &[u8; 32], mem: &mut BackingMemory) {
        let ctr = self.counters.peek_value(addr);
        let mut ct = *plaintext;
        self.cipher.encrypt(&mut ct, addr, ctr);
        mem.write(addr, ct);
        self.macs.update_silently(addr, plaintext, ctr);
    }

    fn on_fill(&mut self, addr: SectorAddr, mem: &mut BackingMemory) -> FillPlan {
        self.fills += 1;
        let mut plan = FillPlan::default();

        // Counter (+ BMT verification) chain.
        let ca = self.counters.read(addr);
        if !ca.chain.is_empty() {
            plan.pre_chains.push(ca.chain);
        }
        plan.async_reads.extend(ca.async_reads);
        plan.writes.extend(ca.writes);
        plan.violation = ca.violation;

        // MAC fetch, in parallel with the counter chain.
        let ma = self.macs.read(addr);
        if !ma.chain.is_empty() {
            plan.pre_chains.push(ma.chain);
        }
        plan.writes.extend(ma.writes);

        // Functional decrypt + verify.
        let plaintext = self.read_plaintext(addr, ca.value, mem);
        if !self.macs.verify(addr, &plaintext, ca.value) && plan.violation.is_none() {
            plan.violation = Some(Violation::MacMismatch { addr });
        }
        plan.plaintext = plaintext;

        // Latency: CME overlaps pad generation with the data fetch (pay AES
        // only when the counter had to be fetched first); XTS decrypts
        // after the data arrives. MAC verification is always charged.
        let lat = self.cfg.latencies;
        plan.crypto_latency = lat.mac_latency
            + if self.cipher.overlaps_fetch() {
                if ca.hit {
                    0
                } else {
                    lat.aes_latency
                }
            } else {
                lat.aes_latency
            };
        plan
    }

    fn on_writeback(
        &mut self,
        addr: SectorAddr,
        plaintext: &[u8; 32],
        mem: &mut BackingMemory,
    ) -> WritePlan {
        self.writebacks += 1;
        let mut plan = WritePlan::default();

        let ca = self.counters.increment(addr);
        if !ca.chain.is_empty() {
            plan.pre_chains.push(ca.chain);
        }
        plan.async_reads.extend(ca.async_reads);
        plan.writes.extend(ca.writes);
        plan.violation = ca.violation;

        if let Some(old_values) = &ca.overflow_old_values {
            let old = old_values.clone();
            self.reencrypt_group(addr, &old, ca.value, mem, &mut plan);
        }

        // Encrypt and store the data.
        let mut ct = *plaintext;
        self.cipher.encrypt(&mut ct, addr, ca.value);
        mem.write(addr, ct);

        // Fresh MAC (write-allocate in the MAC cache).
        let ma = self.macs.write(addr, plaintext, ca.value);
        plan.writes.extend(ma.writes);

        plan.crypto_latency = self.cfg.latencies.aes_latency + self.cfg.latencies.mac_latency;
        plan
    }

    fn extra_stats(&self) -> Vec<(String, u64)> {
        let (ch, cm, bf, bh) = self.counters.stats();
        let (mh, mm) = self.macs.stats();
        vec![
            ("fills".into(), self.fills),
            ("writebacks".into(), self.writebacks),
            ("ctr_cache_hits".into(), ch),
            ("ctr_cache_misses".into(), cm),
            ("bmt_node_fetches".into(), bf),
            ("bmt_node_hits".into(), bh),
            ("mac_cache_hits".into(), mh),
            ("mac_cache_misses".into(), mm),
            ("ctr_group_overflows".into(), self.overflows),
        ]
    }

    fn attach_telemetry(&mut self, tel: &plutus_telemetry::Telemetry) {
        self.counters.attach_telemetry(tel);
        self.macs.attach_telemetry(tel);
    }

    fn inject_fault(&mut self, addr: SectorAddr, fault: MetaFault) -> bool {
        match fault {
            MetaFault::RollbackCounter { value } => self.counters.tamper_minor(addr, value),
            MetaFault::TamperMac => {
                self.macs.tamper(addr);
                true
            }
            MetaFault::TamperBmtNode => {
                self.counters.tamper_bmt(addr);
                true
            }
            // PSSM keeps no compact counters.
            MetaFault::RollbackCompact { .. } => false,
        }
    }

    fn checkpoint(&self) -> Option<Box<dyn SecurityEngine>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn crash_revert(&mut self, checkpoint: &dyn SecurityEngine) -> bool {
        let Some(ck) = checkpoint
            .as_any()
            .and_then(|a| a.downcast_ref::<PssmEngine>())
        else {
            return false;
        };
        self.revert_keeping_macs(ck);
        true
    }

    fn recover(
        &mut self,
        mem: &BackingMemory,
        sectors: &[SectorAddr],
    ) -> Result<RecoveryReport, RecoveryError> {
        let mut report = RecoveryReport::default();
        for &addr in sectors {
            match self.probe_counter(addr, mem) {
                Probe::Consistent => report.already_consistent += 1,
                Probe::Verified(v) => {
                    self.counters.restore_value(addr, v);
                    report.recovered_by_mac += 1;
                }
                Probe::Failed => report.failed.push(addr.raw()),
            }
        }
        Ok(report)
    }

    fn peek_plaintext(&self, addr: SectorAddr, mem: &BackingMemory) -> Option<[u8; 32]> {
        Some(self.read_plaintext(addr, self.counters.peek_value(addr), mem))
    }
}

/// Factory building [`PssmEngine`] instances per partition.
#[derive(Debug, Clone)]
pub struct PssmFactory {
    cfg: SecureMemConfig,
}

impl EngineFactory for PssmFactory {
    fn build(&self, _partition: usize) -> Box<dyn SecurityEngine> {
        Box::new(PssmEngine::new(self.cfg.clone()))
    }

    fn scheme_name(&self) -> &'static str {
        "pssm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TrafficClass;

    fn engine() -> (PssmEngine, BackingMemory) {
        (
            PssmEngine::new(SecureMemConfig::test_small()),
            BackingMemory::new(),
        )
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [0x42; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn ciphertext_in_memory_differs_from_plaintext() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        assert_ne!(mem.read(sector(0)).unwrap(), [0x42; 32]);
    }

    #[test]
    fn install_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.install(sector(3), &[7; 32], &mut mem);
        let fill = e.on_fill(sector(3), &mut mem);
        assert_eq!(fill.plaintext, [7; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn unwritten_memory_reads_zero_clean() {
        let (mut e, mut mem) = engine();
        let fill = e.on_fill(sector(100), &mut mem);
        assert_eq!(fill.plaintext, [0; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn first_fill_fetches_counter_bmt_and_mac() {
        let (mut e, mut mem) = engine();
        let fill = e.on_fill(sector(0), &mut mem);
        // Two parallel chains: [counter, bmt...] and [mac].
        assert_eq!(fill.pre_chains.len(), 2);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::Counter));
        assert!(classes.contains(&TrafficClass::Mac));
        assert!(classes.contains(&TrafficClass::BmtNode));
    }

    #[test]
    fn cached_metadata_makes_fills_free() {
        let (mut e, mut mem) = engine();
        e.on_fill(sector(0), &mut mem);
        let fill = e.on_fill(sector(1), &mut mem); // same group, same MAC line
        assert!(fill.pre_chains.is_empty(), "all metadata should be cached");
    }

    #[test]
    fn data_tamper_detected_via_mac() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let mut mask = [0u8; 32];
        mask[0] = 0x80;
        assert!(mem.corrupt(sector(0), &mask));
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(matches!(
            fill.violation,
            Some(Violation::MacMismatch { .. })
        ));
    }

    #[test]
    fn data_replay_detected_via_counter_binding() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let old = mem.snapshot(sector(0)).unwrap();
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        assert!(mem.replay(sector(0), old));
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            matches!(fill.violation, Some(Violation::MacMismatch { .. })),
            "replayed data must fail the stateful MAC"
        );
    }

    #[test]
    fn counter_rollback_detected_via_tree() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        // Evict the counter by touching many distinct groups' fetch units.
        for i in 1..64 {
            e.on_fill(sector(i * 128), &mut mem);
        }
        e.counters_mut().tamper_minor(sector(0), 1);
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(matches!(
            fill.violation,
            Some(Violation::TreeMismatch { .. })
        ));
    }

    #[test]
    fn cme_fill_latency_depends_on_counter_hit() {
        let (mut e, mut mem) = engine();
        let lat = e.cfg.latencies;
        let first = e.on_fill(sector(0), &mut mem);
        assert_eq!(first.crypto_latency, lat.mac_latency + lat.aes_latency);
        let second = e.on_fill(sector(1), &mut mem);
        assert_eq!(second.crypto_latency, lat.mac_latency);
    }

    #[test]
    fn xts_fill_always_pays_aes() {
        let cfg = SecureMemConfig {
            cipher: crate::config::CipherKind::Xts,
            ..SecureMemConfig::test_small()
        };
        let lat = cfg.latencies;
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        e.on_fill(sector(0), &mut mem);
        let second = e.on_fill(sector(1), &mut mem);
        assert_eq!(second.crypto_latency, lat.mac_latency + lat.aes_latency);
    }

    #[test]
    fn group_overflow_reencrypts_residents() {
        let (mut e, mut mem) = engine();
        // Make two sectors of group 0 resident.
        e.on_writeback(sector(1), &[0xaa; 32], &mut mem);
        // Drive sector 0 to overflow (128 writes).
        for _ in 0..128 {
            e.on_writeback(sector(0), &[0xbb; 32], &mut mem);
        }
        // Both sectors must still decrypt + verify after re-encryption.
        let f1 = e.on_fill(sector(1), &mut mem);
        assert_eq!(f1.plaintext, [0xaa; 32]);
        assert!(f1.violation.is_none());
        let f0 = e.on_fill(sector(0), &mut mem);
        assert_eq!(f0.plaintext, [0xbb; 32]);
        assert!(f0.violation.is_none());
        assert!(e.overflows >= 1);
    }

    #[test]
    fn disable_tree_removes_bmt_chain() {
        let cfg = SecureMemConfig {
            disable_tree: true,
            ..SecureMemConfig::test_small()
        };
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(!classes.contains(&TrafficClass::BmtNode));
        assert!(classes.contains(&TrafficClass::Counter));
    }

    #[test]
    fn monolithic_variant_roundtrips_and_detects() {
        let cfg = SecureMemConfig {
            counter_org: crate::config::CounterOrg::Monolithic,
            ..SecureMemConfig::test_small()
        };
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        for i in 0..8u64 {
            e.on_writeback(sector(i), &[i as u8; 32], &mut mem);
        }
        for i in 0..8u64 {
            let f = e.on_fill(sector(i), &mut mem);
            assert_eq!(f.plaintext, [i as u8; 32]);
            assert!(f.violation.is_none());
        }
        // Monolithic counter sectors cover only 4 data sectors: sector 4
        // needs a different counter fetch unit than sector 0... but both
        // land in one 128B fetch; sector 16 does not.
        let mut mask = [0u8; 32];
        mask[3] = 1;
        mem.corrupt(sector(0), &mask);
        assert!(e.on_fill(sector(0), &mut mem).violation.is_some());
    }

    #[test]
    fn monolithic_replay_detected_via_tree() {
        let cfg = SecureMemConfig {
            counter_org: crate::config::CounterOrg::Monolithic,
            ..SecureMemConfig::test_small()
        };
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        for i in 1..80 {
            e.on_fill(sector(i * 128), &mut mem);
        }
        e.counters_mut().tamper_minor(sector(0), 1);
        let f = e.on_fill(sector(0), &mut mem);
        assert!(matches!(f.violation, Some(Violation::TreeMismatch { .. })));
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let cfg = SecureMemConfig {
            ctr_fetch_bytes: 48,
            ..SecureMemConfig::test_small()
        };
        let err = PssmEngine::try_new(cfg).unwrap_err();
        assert!(matches!(
            err,
            crate::error::SecureMemError::InvalidConfig { .. }
        ));
        assert!(err.to_string().contains("ctr_fetch_bytes"));
    }

    #[test]
    fn crash_recovery_restores_counters_from_macs() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let ck = e.checkpoint().expect("pssm supports checkpointing");
        // Post-checkpoint writes advance counters the crash will lose.
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        e.on_writeback(sector(0), &[3; 32], &mut mem);
        e.on_writeback(sector(7), &[9; 32], &mut mem);
        assert!(e.crash_revert(ck.as_ref()));
        let sectors = mem.resident_addrs();
        let report = e.recover(&mem, &sectors).unwrap();
        assert!(report.failed.is_empty(), "every sector must recover");
        assert!(report.recovered_by_mac >= 2, "stale counters re-proven");
        let f0 = e.on_fill(sector(0), &mut mem);
        assert_eq!(f0.plaintext, [3; 32], "last pre-crash write survives");
        assert!(f0.violation.is_none());
        let f7 = e.on_fill(sector(7), &mut mem);
        assert_eq!(f7.plaintext, [9; 32]);
        assert!(f7.violation.is_none());
    }

    #[test]
    fn crash_recovery_spans_group_overflow() {
        let (mut e, mut mem) = engine();
        // A neighbour resident in group 0 with a small minor.
        e.on_writeback(sector(1), &[0xaa; 32], &mut mem);
        for _ in 0..100 {
            e.on_writeback(sector(0), &[0xbb; 32], &mut mem);
        }
        let ck = e.checkpoint().unwrap();
        // Cross the 7-bit minor overflow after the checkpoint: the group
        // major bumps and every minor resets, so the reverted neighbour's
        // combined value can exceed its true post-overflow value.
        for _ in 0..40 {
            e.on_writeback(sector(0), &[0xcc; 32], &mut mem);
        }
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty());
        let f1 = e.on_fill(sector(1), &mut mem);
        assert_eq!(f1.plaintext, [0xaa; 32]);
        assert!(f1.violation.is_none());
        let f0 = e.on_fill(sector(0), &mut mem);
        assert_eq!(f0.plaintext, [0xcc; 32]);
        assert!(f0.violation.is_none());
    }

    #[test]
    fn peek_plaintext_matches_fill_without_traffic() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(5), &[0x33; 32], &mut mem);
        assert_eq!(e.peek_plaintext(sector(5), &mem), Some([0x33; 32]));
        // Unwritten sectors peek as zero (zero-initialized device memory).
        assert_eq!(e.peek_plaintext(sector(6), &mem), Some([0; 32]));
    }

    #[test]
    fn monolithic_crash_recovery_roundtrips() {
        let cfg = SecureMemConfig {
            counter_org: crate::config::CounterOrg::Monolithic,
            ..SecureMemConfig::test_small()
        };
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let ck = e.checkpoint().unwrap();
        for i in 0..10u8 {
            e.on_writeback(sector(0), &[i; 32], &mut mem);
        }
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty());
        let f = e.on_fill(sector(0), &mut mem);
        assert_eq!(f.plaintext, [9; 32]);
        assert!(f.violation.is_none());
    }

    #[test]
    fn factory_reports_scheme() {
        let f = PssmEngine::factory(SecureMemConfig::test_small());
        assert_eq!(f.scheme_name(), "pssm");
        assert_eq!(f.build(0).name(), "pssm");
    }
}
