//! The PSSM baseline engine (Yuan et al., the paper's Section II-B
//! baseline): partitioned, sectored security metadata with counter-mode
//! encryption, per-sector MACs, and a Bonsai Merkle Tree over the counters.
//!
//! The same engine also realizes the paper's Fig. 14/16 metadata-granularity
//! design points (via [`SecureMemConfig::fine_leaf_coarse_tree`] /
//! [`SecureMemConfig::all_32`]) and the Fig. 20 no-tree mode
//! (`disable_tree`), since those vary only the configuration.

use crate::cipher::DataCipher;
use crate::config::SecureMemConfig;
use crate::counter_system::CounterSystem;
use crate::error::SecureMemError;
use crate::mac_system::MacSystem;
use crate::tenant::TenantCrypto;
use gpu_sim::{
    BackingMemory, DramReq, EngineFactory, FillPlan, MetaFault, RecoveryError, RecoveryReport,
    SectorAddr, SecurityEngine, TrafficClass, Violation, WritePlan,
};

/// Upper bound on counter candidates probed per sector during Phoenix-style
/// crash recovery (128 group overflows past the checkpointed value).
const RECOVERY_PROBE_BOUND: u64 = 1 << 14;

/// How one sector's counter was settled during crash recovery.
///
/// `new_gen` marks sectors that verified under the *new-generation*
/// cipher of a mid-flight key-rotation walk: the crash reverted the walk
/// frontier, so such sectors sit past it while memory already holds
/// new-generation ciphertext.
enum Probe {
    /// The checkpointed counter already verifies against the MAC.
    Consistent {
        /// Verified under the pending new-generation cipher.
        new_gen: bool,
    },
    /// A higher/rebased candidate verified; carries the proven value.
    Verified {
        /// The proven counter value.
        value: u64,
        /// Verified under the pending new-generation cipher.
        new_gen: bool,
    },
    /// No candidate within [`RECOVERY_PROBE_BOUND`] verified.
    Failed,
}

/// The PSSM secure-memory engine (one per partition).
#[derive(Debug, Clone)]
pub struct PssmEngine {
    cfg: SecureMemConfig,
    cipher: DataCipher,
    counters: CounterSystem,
    macs: MacSystem,
    /// Per-tenant key table, rotation walk, and storm gate (multi-tenant
    /// operation only).
    tenancy: Option<TenantCrypto>,
    fills: u64,
    writebacks: u64,
    overflows: u64,
}

impl PssmEngine {
    /// Builds an engine from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: SecureMemConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds an engine from `cfg`, returning a typed error instead of
    /// panicking when the configuration is invalid (the CLI path).
    pub fn try_new(cfg: SecureMemConfig) -> Result<Self, SecureMemError> {
        cfg.validate()
            .map_err(|reason| SecureMemError::InvalidConfig { reason })?;
        Ok(Self {
            cipher: DataCipher::new(&cfg),
            counters: CounterSystem::new(&cfg),
            macs: MacSystem::new(&cfg),
            tenancy: cfg
                .tenancy
                .clone()
                .map(|t| TenantCrypto::new(cfg.cipher, t)),
            cfg,
            fills: 0,
            writebacks: 0,
            overflows: 0,
        })
    }

    /// An [`EngineFactory`] producing one engine per partition.
    pub fn factory(cfg: SecureMemConfig) -> PssmFactory {
        PssmFactory { cfg }
    }

    /// The counter subsystem, read-only.
    pub fn counters(&self) -> &CounterSystem {
        &self.counters
    }

    /// The counter subsystem (attack hooks and stats live here).
    pub fn counters_mut(&mut self) -> &mut CounterSystem {
        &mut self.counters
    }

    /// The MAC subsystem.
    pub fn macs_mut(&mut self) -> &mut MacSystem {
        &mut self.macs
    }

    /// The configured crypto latencies.
    pub fn latencies(&self) -> gpu_sim::SecurityLatencies {
        self.cfg.latencies
    }

    /// Serves a fill whose counter value is already known on-chip (used by
    /// Common Counters for clean regions and by Plutus for unsaturated
    /// compact counters): no counter fetch, no BMT walk — only the MAC path.
    pub fn fill_with_known_counter(
        &mut self,
        addr: SectorAddr,
        ctr: u64,
        mem: &mut BackingMemory,
    ) -> FillPlan {
        self.fills += 1;
        let mut plan = FillPlan::default();
        let ma = self.macs.read(addr);
        if !ma.chain.is_empty() {
            plan.pre_chains.push(ma.chain);
        }
        plan.writes.extend(ma.writes);
        let plaintext = self.read_plaintext(addr, ctr, mem);
        if !self.macs.verify(addr, &plaintext, ctr) {
            plan.violation = Some(Violation::MacMismatch { addr });
        }
        plan.plaintext = plaintext;
        let lat = self.cfg.latencies;
        plan.crypto_latency = lat.mac_latency
            + if self.cipher.overlaps_fetch() {
                0
            } else {
                lat.aes_latency
            };
        plan
    }

    /// The effective cipher for `sector`: the single shared cipher, or —
    /// under tenancy — the owning tenant's current generation (old
    /// generation past a live rotation-walk frontier).
    fn cipher_for(&self, sector: SectorAddr) -> &DataCipher {
        match &self.tenancy {
            Some(tc) => tc.cipher_for(sector),
            None => &self.cipher,
        }
    }

    /// Decrypts (functionally) what memory holds for `sector` under
    /// counter `ctr` and the effective cipher.
    fn read_plaintext(&self, sector: SectorAddr, ctr: u64, mem: &BackingMemory) -> [u8; 32] {
        self.read_plaintext_with(self.cipher_for(sector), sector, ctr, mem)
    }

    /// [`Self::read_plaintext`] under an explicit cipher (recovery probes
    /// try both generations of a mid-flight rotation).
    fn read_plaintext_with(
        &self,
        cipher: &DataCipher,
        sector: SectorAddr,
        ctr: u64,
        mem: &BackingMemory,
    ) -> [u8; 32] {
        match mem.read(sector) {
            Some(mut ct) => {
                cipher.decrypt(&mut ct, sector, ctr);
                ct
            }
            None => [0; 32], // zero-initialized device memory
        }
    }

    /// Advances a live key-rotation walk by at most
    /// `rotation_sectors_per_step` sectors, charging each re-encryption
    /// as a Data-class read + write on the current plan. The frontier
    /// moves only after the batch, so in-batch decrypts still see the
    /// old generation.
    fn rotation_step(
        &mut self,
        mem: &mut BackingMemory,
        reads: &mut Vec<DramReq>,
        writes: &mut Vec<DramReq>,
    ) {
        let Some(tc) = &self.tenancy else {
            return;
        };
        let Some((frontier, end, step)) = tc.walk_window() else {
            return;
        };
        let step = step as usize;
        // The work list is the ownership registry, not the MAC tag
        // table: MAC-skip sectors carry ciphertext but no stored tag.
        let addrs = tc.owned_in_range(frontier, end, step);
        let done = addrs.len() < step;
        // One batched rotate call re-encrypts the whole step: the old and
        // new generations' cipher blocks each run as a single batch.
        let items: Vec<(SectorAddr, u64)> = addrs
            .iter()
            .map(|&a| (a, self.counters.peek_value(a)))
            .collect();
        let last = items.last().map_or(frontier, |&(a, _)| a.raw());
        if let Some(tc) = &mut self.tenancy {
            for (&(addr, _), changed) in items.iter().zip(tc.rotate_sectors(&items, mem)) {
                if changed {
                    reads.push(DramReq::new(addr.raw(), 32, TrafficClass::Data));
                    writes.push(DramReq::new(addr.raw(), 32, TrafficClass::Data));
                }
            }
        }
        let Some(tc) = &mut self.tenancy else {
            return;
        };
        if done {
            tc.finish_walk();
        } else {
            tc.advance_frontier(last + 32);
        }
    }

    /// Drains a little of `addr`'s tenant's deferred storm traffic into
    /// the current plan (the offender pays, victims do not).
    fn drain_storm(
        &mut self,
        addr: SectorAddr,
        reads: &mut Vec<DramReq>,
        writes: &mut Vec<DramReq>,
    ) {
        if let Some(tc) = &mut self.tenancy {
            let t = tc.tenant_of(addr);
            tc.storm_drain_into(t, reads, writes);
        }
    }

    /// Re-encrypts every resident sector of an overflowed counter group
    /// under the shared new counter, refreshing MACs. The functional
    /// re-encryption is unconditional; the DRAM traffic is emitted into
    /// `reads`/`writes` so the caller can book it inline or route it
    /// through the storm gate.
    fn reencrypt_group(
        &mut self,
        written: SectorAddr,
        old_values: &[u64],
        new_value: u64,
        mem: &mut BackingMemory,
        reads: &mut Vec<DramReq>,
        writes: &mut Vec<DramReq>,
    ) {
        self.overflows += 1;
        let group = self.counters.layout().group_of(written);
        let first = self.counters.layout().group_first_sector(group);
        // Gather the group's resident sectors, then run the old-counter
        // decrypts, new-counter encrypts, and MAC refreshes as three
        // batches instead of sector-at-a-time.
        let mut data: Vec<[u8; 32]> = Vec::with_capacity(old_values.len());
        let mut old_at: Vec<(SectorAddr, u64)> = Vec::with_capacity(old_values.len());
        for (i, old) in old_values.iter().enumerate() {
            let sector = SectorAddr::new(first.raw() + (i as u64) * 32);
            if sector == written {
                continue; // the triggering sector is re-encrypted by the caller
            }
            let Some(ct) = mem.read(sector) else {
                continue;
            };
            data.push(ct);
            old_at.push((sector, *old));
        }
        self.decrypt_many_effective(&mut data, &old_at);
        let plaintexts = data.clone();
        let new_at: Vec<(SectorAddr, u64)> = old_at.iter().map(|&(s, _)| (s, new_value)).collect();
        self.encrypt_many_effective(&mut data, &new_at);
        for (ct, &(sector, _)) in data.iter().zip(new_at.iter()) {
            mem.write(sector, *ct);
            reads.push(DramReq::new(sector.raw(), 32, TrafficClass::Data));
            writes.push(DramReq::new(sector.raw(), 32, TrafficClass::Data));
        }
        self.macs.update_silently_many(&plaintexts, &new_at);
    }

    /// Batched decrypt under each sector's *effective* cipher: consecutive
    /// sectors sharing a cipher (the overwhelmingly common case — tenant
    /// boundaries are slab-aligned) form one batch each.
    fn decrypt_many_effective(&self, data: &mut [[u8; 32]], at: &[(SectorAddr, u64)]) {
        let mut start = 0;
        while start < at.len() {
            let cipher = self.cipher_for(at[start].0);
            let mut end = start + 1;
            while end < at.len() && std::ptr::eq(cipher, self.cipher_for(at[end].0)) {
                end += 1;
            }
            cipher.decrypt_many(&mut data[start..end], &at[start..end]);
            start = end;
        }
    }

    /// Batched encrypt under each sector's effective cipher (see
    /// [`Self::decrypt_many_effective`]).
    fn encrypt_many_effective(&self, data: &mut [[u8; 32]], at: &[(SectorAddr, u64)]) {
        let mut start = 0;
        while start < at.len() {
            let cipher = self.cipher_for(at[start].0);
            let mut end = start + 1;
            while end < at.len() && std::ptr::eq(cipher, self.cipher_for(at[end].0)) {
                end += 1;
            }
            cipher.encrypt_many(&mut data[start..end], &at[start..end]);
            start = end;
        }
    }

    /// Crash-revert core, shared with wrapper engines: adopt the
    /// checkpoint's volatile metadata (counters, BMT, caches) while keeping
    /// this crashed engine's MAC store — MACs are modeled write-through
    /// persistent, so they survive the crash and anchor Phoenix recovery.
    pub(crate) fn revert_keeping_macs(&mut self, checkpoint: &PssmEngine) {
        let persistent_macs = self.macs.clone();
        *self = checkpoint.clone();
        self.macs = persistent_macs;
    }

    /// Phoenix-style counter probe for one sector: try the current
    /// (checkpoint-reverted) value first, then scan upward from the
    /// recovery floor until a candidate decrypts to plaintext that verifies
    /// against the persistent MAC.
    fn probe_counter(&self, addr: SectorAddr, mem: &BackingMemory) -> Probe {
        // While a rotation walk is mid-flight over `addr`, a second
        // cipher candidate: the new generation. MAC keys are
        // generation-stable, so the tag arbitrates which one is right.
        let pending = self
            .tenancy
            .as_ref()
            .and_then(|tc| tc.pending_new_gen(addr));
        let cur = self.counters.peek_value(addr);
        let pt = self.read_plaintext(addr, cur, mem);
        if self.macs.verify(addr, &pt, cur) {
            return Probe::Consistent { new_gen: false };
        }
        if let Some(cipher) = pending {
            let pt = self.read_plaintext_with(cipher, addr, cur, mem);
            if self.macs.verify(addr, &pt, cur) {
                return Probe::Consistent { new_gen: true };
            }
        }
        // The floor clears the minor: a group overflow since the checkpoint
        // zeroes every minor, so the true value can sit below `cur` once a
        // neighbour has already restored the group's shared major.
        //
        // Candidates are probed in chunks: each chunk's decrypts and MAC
        // verifications run as batched cipher calls, while the
        // first-verifying-candidate semantics (effective generation before
        // pending, lowest counter first) are preserved by scanning the
        // chunk's verdicts in order.
        let effective = self.cipher_for(addr);
        let ct = mem.read(addr);
        let base = self.counters.recovery_floor(addr);
        let end = base.saturating_add(RECOVERY_PROBE_BOUND);
        const PROBE_CHUNK: u64 = 16;
        let mut v = base;
        while v < end {
            let chunk_end = end.min(v + PROBE_CHUNK);
            let at: Vec<(SectorAddr, u64)> = (v..chunk_end)
                .filter(|&x| x != cur)
                .map(|x| (addr, x))
                .collect();
            v = chunk_end;
            if at.is_empty() {
                continue;
            }
            let eff_ok = self.probe_chunk(effective, ct, &at);
            let pend_ok = pending.map(|cipher| self.probe_chunk(cipher, ct, &at));
            for (i, &(_, value)) in at.iter().enumerate() {
                if eff_ok[i] {
                    return Probe::Verified {
                        value,
                        new_gen: false,
                    };
                }
                if pend_ok.as_ref().is_some_and(|p| p[i]) {
                    return Probe::Verified {
                        value,
                        new_gen: true,
                    };
                }
            }
        }
        Probe::Failed
    }

    /// MAC-verifies one chunk of candidate counters for a single sector:
    /// the resident ciphertext is decrypted under every candidate in one
    /// batched call, then all tags verify in a second.
    fn probe_chunk(
        &self,
        cipher: &DataCipher,
        ct: Option<[u8; 32]>,
        at: &[(SectorAddr, u64)],
    ) -> Vec<bool> {
        let mut pts = vec![ct.unwrap_or([0; 32]); at.len()];
        if ct.is_some() {
            cipher.decrypt_many(&mut pts, at);
        }
        self.macs.verify_many(&pts, at)
    }
}

impl SecurityEngine for PssmEngine {
    fn name(&self) -> &'static str {
        "pssm"
    }

    fn install(&mut self, addr: SectorAddr, plaintext: &[u8; 32], mem: &mut BackingMemory) {
        let ctr = self.counters.peek_value(addr);
        let mut ct = *plaintext;
        self.cipher_for(addr).encrypt(&mut ct, addr, ctr);
        mem.write(addr, ct);
        if let Some(tc) = &mut self.tenancy {
            tc.note_owned(addr);
        }
        self.macs.update_silently(addr, plaintext, ctr);
    }

    fn on_fill(&mut self, addr: SectorAddr, mem: &mut BackingMemory) -> FillPlan {
        self.fills += 1;
        let mut plan = FillPlan::default();

        // Counter (+ BMT verification) chain.
        let ca = self.counters.read(addr);
        if !ca.chain.is_empty() {
            plan.pre_chains.push(ca.chain);
        }
        plan.async_reads.extend(ca.async_reads);
        plan.writes.extend(ca.writes);
        plan.violation = ca.violation;

        // MAC fetch, in parallel with the counter chain.
        let ma = self.macs.read(addr);
        if !ma.chain.is_empty() {
            plan.pre_chains.push(ma.chain);
        }
        plan.writes.extend(ma.writes);

        // Functional decrypt + verify.
        let plaintext = self.read_plaintext(addr, ca.value, mem);
        if !self.macs.verify(addr, &plaintext, ca.value) && plan.violation.is_none() {
            plan.violation = Some(Violation::MacMismatch { addr });
        }
        plan.plaintext = plaintext;

        // Latency: CME overlaps pad generation with the data fetch (pay AES
        // only when the counter had to be fetched first); XTS decrypts
        // after the data arrives. MAC verification is always charged.
        let lat = self.cfg.latencies;
        plan.crypto_latency = lat.mac_latency
            + if self.cipher.overlaps_fetch() {
                if ca.hit {
                    0
                } else {
                    lat.aes_latency
                }
            } else {
                lat.aes_latency
            };

        // Background tenancy work rides on the fill's plan: one rotation
        // step, plus a drain of this tenant's deferred storm backlog.
        self.rotation_step(mem, &mut plan.async_reads, &mut plan.writes);
        self.drain_storm(addr, &mut plan.async_reads, &mut plan.writes);
        plan
    }

    fn on_writeback(
        &mut self,
        addr: SectorAddr,
        plaintext: &[u8; 32],
        mem: &mut BackingMemory,
    ) -> WritePlan {
        self.writebacks += 1;
        let mut plan = WritePlan::default();
        if let Some(tc) = &mut self.tenancy {
            let t = tc.tenant_of(addr);
            tc.storm_tick(t);
        }

        let ca = self.counters.increment(addr);
        if !ca.chain.is_empty() {
            plan.pre_chains.push(ca.chain);
        }
        plan.async_reads.extend(ca.async_reads);
        plan.writes.extend(ca.writes);
        plan.violation = ca.violation;

        if let Some(old_values) = &ca.overflow_old_values {
            let old = old_values.clone();
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            self.reencrypt_group(addr, &old, ca.value, mem, &mut reads, &mut writes);
            // Storm gate: within the burst budget the overflow's traffic
            // bills inline; past it, the traffic defers to the offender's
            // own later accesses (re-encryption itself already happened).
            let admit = match &mut self.tenancy {
                Some(tc) => {
                    let t = tc.tenant_of(addr);
                    tc.storm_admit(t)
                }
                None => true,
            };
            if admit {
                plan.async_reads.extend(reads);
                plan.writes.extend(writes);
            } else if let Some(tc) = &mut self.tenancy {
                let t = tc.tenant_of(addr);
                tc.storm_defer(t, reads, writes);
            }
        }

        // Encrypt and store the data.
        let mut ct = *plaintext;
        self.cipher_for(addr).encrypt(&mut ct, addr, ca.value);
        mem.write(addr, ct);
        if let Some(tc) = &mut self.tenancy {
            tc.note_owned(addr);
        }

        // Fresh MAC (write-allocate in the MAC cache).
        let ma = self.macs.write(addr, plaintext, ca.value);
        plan.writes.extend(ma.writes);

        plan.crypto_latency = self.cfg.latencies.aes_latency + self.cfg.latencies.mac_latency;
        self.rotation_step(mem, &mut plan.async_reads, &mut plan.writes);
        self.drain_storm(addr, &mut plan.async_reads, &mut plan.writes);
        plan
    }

    fn extra_stats(&self) -> Vec<(String, u64)> {
        let (ch, cm, bf, bh) = self.counters.stats();
        let (mh, mm) = self.macs.stats();
        let mut stats = vec![
            ("fills".into(), self.fills),
            ("writebacks".into(), self.writebacks),
            ("ctr_cache_hits".into(), ch),
            ("ctr_cache_misses".into(), cm),
            ("bmt_node_fetches".into(), bf),
            ("bmt_node_hits".into(), bh),
            ("mac_cache_hits".into(), mh),
            ("mac_cache_misses".into(), mm),
            ("ctr_group_overflows".into(), self.overflows),
        ];
        if let Some(tc) = &self.tenancy {
            stats.extend(tc.extra_stats());
        }
        stats
    }

    fn start_key_rotation(&mut self, tenant: u32) -> bool {
        match &mut self.tenancy {
            Some(tc) => tc.start_rotation(tenant),
            None => false,
        }
    }

    fn rotation_active(&self) -> bool {
        self.tenancy.as_ref().is_some_and(|tc| tc.rotation_active())
    }

    fn attach_telemetry(&mut self, tel: &plutus_telemetry::Telemetry) {
        self.counters.attach_telemetry(tel);
        self.macs.attach_telemetry(tel);
    }

    fn inject_fault(&mut self, addr: SectorAddr, fault: MetaFault) -> bool {
        match fault {
            MetaFault::RollbackCounter { value } => self.counters.tamper_minor(addr, value),
            MetaFault::TamperMac => {
                self.macs.tamper(addr);
                true
            }
            MetaFault::TamperBmtNode => {
                self.counters.tamper_bmt(addr);
                true
            }
            // PSSM keeps no compact counters.
            MetaFault::RollbackCompact { .. } => false,
        }
    }

    fn checkpoint(&self) -> Option<Box<dyn SecurityEngine>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn crash_revert(&mut self, checkpoint: &dyn SecurityEngine) -> bool {
        let Some(ck) = checkpoint
            .as_any()
            .and_then(|a| a.downcast_ref::<PssmEngine>())
        else {
            return false;
        };
        self.revert_keeping_macs(ck);
        true
    }

    fn recover(
        &mut self,
        mem: &BackingMemory,
        sectors: &[SectorAddr],
    ) -> Result<RecoveryReport, RecoveryError> {
        let mut report = RecoveryReport::default();
        // Highest sector proven to already carry the mid-rotation new
        // generation: the crash reverted the walk frontier, and the walk
        // is address-ordered, so everything up to this point is done.
        let mut max_new_gen: Option<u64> = None;
        for &addr in sectors {
            let mut note_gen = |new_gen: bool| {
                if new_gen {
                    max_new_gen = Some(max_new_gen.map_or(addr.raw(), |m| m.max(addr.raw())));
                }
            };
            match self.probe_counter(addr, mem) {
                Probe::Consistent { new_gen } => {
                    note_gen(new_gen);
                    report.already_consistent += 1;
                }
                Probe::Verified { value, new_gen } => {
                    note_gen(new_gen);
                    self.counters.restore_value(addr, value);
                    report.recovered_by_mac += 1;
                }
                Probe::Failed => {
                    report.failed.push(addr.raw());
                    continue;
                }
            }
            // Re-note ownership: the revert may have rolled the registry
            // back past sectors that verifiably hold our ciphertext, and
            // a rotation walk must not skip them.
            if let Some(tc) = &mut self.tenancy {
                tc.note_owned(addr);
            }
        }
        if let Some(tc) = &mut self.tenancy {
            tc.reconcile_frontier(max_new_gen);
        }
        Ok(report)
    }

    fn peek_plaintext(&self, addr: SectorAddr, mem: &BackingMemory) -> Option<[u8; 32]> {
        Some(self.read_plaintext(addr, self.counters.peek_value(addr), mem))
    }
}

/// Factory building [`PssmEngine`] instances per partition.
#[derive(Debug, Clone)]
pub struct PssmFactory {
    cfg: SecureMemConfig,
}

impl EngineFactory for PssmFactory {
    fn build(&self, _partition: usize) -> Box<dyn SecurityEngine> {
        Box::new(PssmEngine::new(self.cfg.clone()))
    }

    fn scheme_name(&self) -> &'static str {
        "pssm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TrafficClass;

    fn engine() -> (PssmEngine, BackingMemory) {
        (
            PssmEngine::new(SecureMemConfig::test_small()),
            BackingMemory::new(),
        )
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [0x42; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn ciphertext_in_memory_differs_from_plaintext() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        assert_ne!(mem.read(sector(0)).unwrap(), [0x42; 32]);
    }

    #[test]
    fn install_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.install(sector(3), &[7; 32], &mut mem);
        let fill = e.on_fill(sector(3), &mut mem);
        assert_eq!(fill.plaintext, [7; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn unwritten_memory_reads_zero_clean() {
        let (mut e, mut mem) = engine();
        let fill = e.on_fill(sector(100), &mut mem);
        assert_eq!(fill.plaintext, [0; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn first_fill_fetches_counter_bmt_and_mac() {
        let (mut e, mut mem) = engine();
        let fill = e.on_fill(sector(0), &mut mem);
        // Two parallel chains: [counter, bmt...] and [mac].
        assert_eq!(fill.pre_chains.len(), 2);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::Counter));
        assert!(classes.contains(&TrafficClass::Mac));
        assert!(classes.contains(&TrafficClass::BmtNode));
    }

    #[test]
    fn cached_metadata_makes_fills_free() {
        let (mut e, mut mem) = engine();
        e.on_fill(sector(0), &mut mem);
        let fill = e.on_fill(sector(1), &mut mem); // same group, same MAC line
        assert!(fill.pre_chains.is_empty(), "all metadata should be cached");
    }

    #[test]
    fn data_tamper_detected_via_mac() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let mut mask = [0u8; 32];
        mask[0] = 0x80;
        assert!(mem.corrupt(sector(0), &mask));
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(matches!(
            fill.violation,
            Some(Violation::MacMismatch { .. })
        ));
    }

    #[test]
    fn data_replay_detected_via_counter_binding() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let old = mem.snapshot(sector(0)).unwrap();
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        assert!(mem.replay(sector(0), old));
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            matches!(fill.violation, Some(Violation::MacMismatch { .. })),
            "replayed data must fail the stateful MAC"
        );
    }

    #[test]
    fn counter_rollback_detected_via_tree() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        // Evict the counter by touching many distinct groups' fetch units.
        for i in 1..64 {
            e.on_fill(sector(i * 128), &mut mem);
        }
        e.counters_mut().tamper_minor(sector(0), 1);
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(matches!(
            fill.violation,
            Some(Violation::TreeMismatch { .. })
        ));
    }

    #[test]
    fn cme_fill_latency_depends_on_counter_hit() {
        let (mut e, mut mem) = engine();
        let lat = e.cfg.latencies;
        let first = e.on_fill(sector(0), &mut mem);
        assert_eq!(first.crypto_latency, lat.mac_latency + lat.aes_latency);
        let second = e.on_fill(sector(1), &mut mem);
        assert_eq!(second.crypto_latency, lat.mac_latency);
    }

    #[test]
    fn xts_fill_always_pays_aes() {
        let cfg = SecureMemConfig {
            cipher: crate::config::CipherKind::Xts,
            ..SecureMemConfig::test_small()
        };
        let lat = cfg.latencies;
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        e.on_fill(sector(0), &mut mem);
        let second = e.on_fill(sector(1), &mut mem);
        assert_eq!(second.crypto_latency, lat.mac_latency + lat.aes_latency);
    }

    #[test]
    fn group_overflow_reencrypts_residents() {
        let (mut e, mut mem) = engine();
        // Make two sectors of group 0 resident.
        e.on_writeback(sector(1), &[0xaa; 32], &mut mem);
        // Drive sector 0 to overflow (128 writes).
        for _ in 0..128 {
            e.on_writeback(sector(0), &[0xbb; 32], &mut mem);
        }
        // Both sectors must still decrypt + verify after re-encryption.
        let f1 = e.on_fill(sector(1), &mut mem);
        assert_eq!(f1.plaintext, [0xaa; 32]);
        assert!(f1.violation.is_none());
        let f0 = e.on_fill(sector(0), &mut mem);
        assert_eq!(f0.plaintext, [0xbb; 32]);
        assert!(f0.violation.is_none());
        assert!(e.overflows >= 1);
    }

    #[test]
    fn disable_tree_removes_bmt_chain() {
        let cfg = SecureMemConfig {
            disable_tree: true,
            ..SecureMemConfig::test_small()
        };
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(!classes.contains(&TrafficClass::BmtNode));
        assert!(classes.contains(&TrafficClass::Counter));
    }

    #[test]
    fn monolithic_variant_roundtrips_and_detects() {
        let cfg = SecureMemConfig {
            counter_org: crate::config::CounterOrg::Monolithic,
            ..SecureMemConfig::test_small()
        };
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        for i in 0..8u64 {
            e.on_writeback(sector(i), &[i as u8; 32], &mut mem);
        }
        for i in 0..8u64 {
            let f = e.on_fill(sector(i), &mut mem);
            assert_eq!(f.plaintext, [i as u8; 32]);
            assert!(f.violation.is_none());
        }
        // Monolithic counter sectors cover only 4 data sectors: sector 4
        // needs a different counter fetch unit than sector 0... but both
        // land in one 128B fetch; sector 16 does not.
        let mut mask = [0u8; 32];
        mask[3] = 1;
        mem.corrupt(sector(0), &mask);
        assert!(e.on_fill(sector(0), &mut mem).violation.is_some());
    }

    #[test]
    fn monolithic_replay_detected_via_tree() {
        let cfg = SecureMemConfig {
            counter_org: crate::config::CounterOrg::Monolithic,
            ..SecureMemConfig::test_small()
        };
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        for i in 1..80 {
            e.on_fill(sector(i * 128), &mut mem);
        }
        e.counters_mut().tamper_minor(sector(0), 1);
        let f = e.on_fill(sector(0), &mut mem);
        assert!(matches!(f.violation, Some(Violation::TreeMismatch { .. })));
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let cfg = SecureMemConfig {
            ctr_fetch_bytes: 48,
            ..SecureMemConfig::test_small()
        };
        let err = PssmEngine::try_new(cfg).unwrap_err();
        assert!(matches!(
            err,
            crate::error::SecureMemError::InvalidConfig { .. }
        ));
        assert!(err.to_string().contains("ctr_fetch_bytes"));
    }

    #[test]
    fn crash_recovery_restores_counters_from_macs() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let ck = e.checkpoint().expect("pssm supports checkpointing");
        // Post-checkpoint writes advance counters the crash will lose.
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        e.on_writeback(sector(0), &[3; 32], &mut mem);
        e.on_writeback(sector(7), &[9; 32], &mut mem);
        assert!(e.crash_revert(ck.as_ref()));
        let sectors = mem.resident_addrs();
        let report = e.recover(&mem, &sectors).unwrap();
        assert!(report.failed.is_empty(), "every sector must recover");
        assert!(report.recovered_by_mac >= 2, "stale counters re-proven");
        let f0 = e.on_fill(sector(0), &mut mem);
        assert_eq!(f0.plaintext, [3; 32], "last pre-crash write survives");
        assert!(f0.violation.is_none());
        let f7 = e.on_fill(sector(7), &mut mem);
        assert_eq!(f7.plaintext, [9; 32]);
        assert!(f7.violation.is_none());
    }

    #[test]
    fn crash_recovery_spans_group_overflow() {
        let (mut e, mut mem) = engine();
        // A neighbour resident in group 0 with a small minor.
        e.on_writeback(sector(1), &[0xaa; 32], &mut mem);
        for _ in 0..100 {
            e.on_writeback(sector(0), &[0xbb; 32], &mut mem);
        }
        let ck = e.checkpoint().unwrap();
        // Cross the 7-bit minor overflow after the checkpoint: the group
        // major bumps and every minor resets, so the reverted neighbour's
        // combined value can exceed its true post-overflow value.
        for _ in 0..40 {
            e.on_writeback(sector(0), &[0xcc; 32], &mut mem);
        }
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty());
        let f1 = e.on_fill(sector(1), &mut mem);
        assert_eq!(f1.plaintext, [0xaa; 32]);
        assert!(f1.violation.is_none());
        let f0 = e.on_fill(sector(0), &mut mem);
        assert_eq!(f0.plaintext, [0xcc; 32]);
        assert!(f0.violation.is_none());
    }

    #[test]
    fn peek_plaintext_matches_fill_without_traffic() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(5), &[0x33; 32], &mut mem);
        assert_eq!(e.peek_plaintext(sector(5), &mem), Some([0x33; 32]));
        // Unwritten sectors peek as zero (zero-initialized device memory).
        assert_eq!(e.peek_plaintext(sector(6), &mem), Some([0; 32]));
    }

    #[test]
    fn monolithic_crash_recovery_roundtrips() {
        let cfg = SecureMemConfig {
            counter_org: crate::config::CounterOrg::Monolithic,
            ..SecureMemConfig::test_small()
        };
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let ck = e.checkpoint().unwrap();
        for i in 0..10u8 {
            e.on_writeback(sector(0), &[i; 32], &mut mem);
        }
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty());
        let f = e.on_fill(sector(0), &mut mem);
        assert_eq!(f.plaintext, [9; 32]);
        assert!(f.violation.is_none());
    }

    #[test]
    fn factory_reports_scheme() {
        let f = PssmEngine::factory(SecureMemConfig::test_small());
        assert_eq!(f.scheme_name(), "pssm");
        assert_eq!(f.build(0).name(), "pssm");
    }

    fn tenant_cfg() -> SecureMemConfig {
        use crate::tenant::TenancyConfig;
        use gpu_sim::TenantMap;
        let mut map = TenantMap::new();
        map.add_range(0, 0x10000, 1);
        map.add_range(0x10000, 0x20000, 2);
        SecureMemConfig {
            tenancy: Some(TenancyConfig::new(map, 7)),
            ..SecureMemConfig::test_small()
        }
    }

    #[test]
    fn tenant_engine_roundtrips_both_tenants() {
        let mut e = PssmEngine::new(tenant_cfg());
        let mut mem = BackingMemory::new();
        let a1 = SectorAddr::new(0x100);
        let a2 = SectorAddr::new(0x10100);
        e.on_writeback(a1, &[1; 32], &mut mem);
        e.on_writeback(a2, &[2; 32], &mut mem);
        assert!(e.on_fill(a1, &mut mem).violation.is_none());
        assert!(e.on_fill(a2, &mut mem).violation.is_none());
        assert_eq!(e.peek_plaintext(a1, &mem), Some([1; 32]));
        assert_eq!(e.peek_plaintext(a2, &mem), Some([2; 32]));
    }

    #[test]
    fn key_rotation_completes_and_preserves_plaintext() {
        let mut e = PssmEngine::new(tenant_cfg());
        let mut mem = BackingMemory::new();
        for i in 0..40u64 {
            e.on_writeback(sector(i), &[i as u8; 32], &mut mem);
        }
        let before = mem.read(sector(0)).unwrap();
        assert!(e.start_key_rotation(1));
        assert!(e.rotation_active());
        // Accesses to the *other* tenant drive the walk forward.
        let other = SectorAddr::new(0x10000);
        let mut guard = 0;
        while e.rotation_active() {
            e.on_fill(other, &mut mem);
            guard += 1;
            assert!(guard < 100, "rotation walk must terminate");
        }
        // Ciphertext changed, plaintext identical, MACs still verify.
        assert_ne!(mem.read(sector(0)).unwrap(), before);
        for i in 0..40u64 {
            let f = e.on_fill(sector(i), &mut mem);
            assert_eq!(f.plaintext, [i as u8; 32]);
            assert!(
                f.violation.is_none(),
                "sector {i} must verify post-rotation"
            );
        }
    }

    #[test]
    fn crash_mid_rotation_recovers_bit_identical() {
        let mut e = PssmEngine::new(tenant_cfg());
        let mut mem = BackingMemory::new();
        for i in 0..32u64 {
            e.on_writeback(sector(i), &[i as u8; 32], &mut mem);
        }
        // Rotation starts BEFORE the covering checkpoint (the documented
        // ordering constraint), then advances past a few sectors.
        assert!(e.start_key_rotation(1));
        let ck = e.checkpoint().unwrap();
        let other = SectorAddr::new(0x10000);
        for _ in 0..3 {
            e.on_fill(other, &mut mem);
        }
        // Crash: volatile state reverts (walk frontier included); memory
        // keeps the partially rotated ciphertext.
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty(), "recovery must succeed mid-walk");
        // Finish the walk post-recovery and check every sector.
        let mut guard = 0;
        while e.rotation_active() {
            e.on_fill(other, &mut mem);
            guard += 1;
            assert!(guard < 100);
        }
        for i in 0..32u64 {
            let f = e.on_fill(sector(i), &mut mem);
            assert_eq!(f.plaintext, [i as u8; 32], "sector {i} bit-identical");
            assert!(f.violation.is_none());
        }
    }

    #[test]
    fn storm_gate_defers_overflow_traffic_past_burst() {
        use crate::tenant::TenancyConfig;
        use gpu_sim::TenantMap;
        let mut map = TenantMap::new();
        map.add_range(0, 0x10000, 1);
        let mut ten = TenancyConfig::new(map, 7);
        ten.storm_burst = 1;
        ten.storm_window = 10_000; // never rolls over inside this test
        let cfg = SecureMemConfig {
            tenancy: Some(ten),
            ..SecureMemConfig::test_small()
        };
        let mut e = PssmEngine::new(cfg);
        let mut mem = BackingMemory::new();
        // Residents so group re-encryption has traffic to emit.
        e.on_writeback(sector(1), &[0xaa; 32], &mut mem);
        e.on_writeback(sector(33), &[0xcc; 32], &mut mem);
        // First overflow (group 0): admitted inline.
        for _ in 0..128 {
            e.on_writeback(sector(0), &[0xbb; 32], &mut mem);
        }
        // Second overflow (group 1): past the burst budget → deferred.
        for _ in 0..128 {
            e.on_writeback(sector(32), &[0xdd; 32], &mut mem);
        }
        let stats: std::collections::HashMap<String, u64> = e.extra_stats().into_iter().collect();
        assert!(stats["storm_suppressed_overflows"] >= 1);
        assert!(stats["storm_deferred_reqs"] >= 1);
        // Functional state is untouched by the deferral.
        assert!(e.on_fill(sector(1), &mut mem).violation.is_none());
        assert!(e.on_fill(sector(33), &mut mem).violation.is_none());
        assert_eq!(e.on_fill(sector(33), &mut mem).plaintext, [0xcc; 32]);
    }
}
