//! Property-style tests for the secure-memory machinery, driven by
//! seeded random sampling (the build resolves no external crates, so
//! these loops stand in for proptest).

use gpu_sim::{BackingMemory, SectorAddr, SecurityEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_mem::{CounterStore, IncrementOutcome, MacStore, PssmEngine, SecureMemConfig};

const SEEDS: u64 = 24;

/// Split counters are strictly monotonic per sector across any
/// interleaving of increments, including group overflows.
#[test]
fn counters_never_repeat() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = CounterStore::new();
        let mut last: std::collections::HashMap<u64, u64> = Default::default();
        for _ in 0..rng.gen_range(1usize..600) {
            let sector = SectorAddr::new(rng.gen_range(0u64..8) * 32);
            store.increment(sector);
            // All 8 tracked sectors must stay monotonic (group resets bump
            // the shared major, so values may jump, never fall or repeat
            // on the *written* sector; others may only grow).
            for t in 0..8u64 {
                let addr = SectorAddr::new(t * 32);
                let v = store.value(addr);
                let prev = last.insert(t, v).unwrap_or(0);
                assert!(v >= prev, "sector {t} went {prev} -> {v}");
            }
            let v = store.value(sector);
            assert!(v > 0);
        }
    }
}

/// Group overflow reports exactly the pre-overflow values.
#[test]
fn overflow_old_values_match_observations() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let extra = rng.gen_range(0u32..120);
        let mut store = CounterStore::new();
        let a = SectorAddr::new(0);
        let b = SectorAddr::new(32); // same group
        for _ in 0..extra {
            store.increment(b);
        }
        let b_value = store.value(b);
        for _ in 0..127 {
            store.increment(a); // minor reaches its 127 maximum
        }
        match store.increment(a) {
            IncrementOutcome::GroupOverflow {
                old_values,
                new_value,
            } => {
                assert_eq!(old_values[0], 127);
                assert_eq!(old_values[1], b_value);
                assert_eq!(new_value, 128);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
    }
}

/// MAC verification accepts exactly the (data, counter) pair it was
/// computed over.
#[test]
fn mac_verification_is_sound_and_complete() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: [u8; 32] = rng.gen();
        let other: [u8; 32] = rng.gen();
        let ctr = rng.gen_range(0u64..1000);
        let mut m = MacStore::new([5; 16], 8);
        let addr = SectorAddr::new(0x40);
        m.update(addr, &data, ctr);
        assert!(m.verify(addr, &data, ctr));
        assert!(!m.verify(addr, &data, ctr + 1), "stale counter accepted");
        if other != data {
            assert!(!m.verify(addr, &other, ctr), "forged data accepted");
        }
    }
}

/// The PSSM engine round-trips arbitrary write sequences (random
/// addresses within a few groups, random payloads).
#[test]
fn pssm_roundtrips_random_sequences() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut engine = PssmEngine::new(SecureMemConfig::test_small());
        let mut mem = BackingMemory::new();
        let mut reference: std::collections::HashMap<u64, [u8; 32]> = Default::default();
        for _ in 0..rng.gen_range(1usize..120) {
            let addr = SectorAddr::new(rng.gen_range(0u64..96) * 32);
            let v = rng.gen::<u8>();
            engine.on_writeback(addr, &[v; 32], &mut mem);
            reference.insert(addr.raw(), [v; 32]);
        }
        for (&raw, expected) in &reference {
            let fill = engine.on_fill(SectorAddr::new(raw), &mut mem);
            assert_eq!(&fill.plaintext, expected);
            assert!(fill.violation.is_none());
        }
    }
}

/// Any single-bit corruption of a written sector is detected by PSSM.
#[test]
fn pssm_detects_arbitrary_bit_flips() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let byte = rng.gen_range(0usize..32);
        let bit = rng.gen_range(0u8..8);
        let v = rng.gen::<u8>();
        let mut engine = PssmEngine::new(SecureMemConfig::test_small());
        let mut mem = BackingMemory::new();
        let addr = SectorAddr::new(0x80);
        engine.on_writeback(addr, &[v; 32], &mut mem);
        let mut mask = [0u8; 32];
        mask[byte] = 1 << bit;
        assert!(mem.corrupt(addr, &mask));
        let fill = engine.on_fill(addr, &mut mem);
        assert!(fill.violation.is_some());
    }
}
