//! Per-tenant SLO tracking and rolling anomaly detection.
//!
//! The campaigns need two different alarms:
//!
//! * **Z-score anomalies** — "this epoch's value is far outside the
//!   series' own recent behavior." Each named series keeps an
//!   exponentially weighted moving average of its mean and variance
//!   (`mean' = αx + (1−α)mean`; `var' = α(x−mean)² + (1−α)var`, with
//!   the residual taken against the pre-update mean) and flags
//!   `|x − mean| / √var > z_threshold` once `warmup` samples have been
//!   absorbed. These are advisory: they become `anomaly` events in the
//!   stream but do not fail the run, because a short campaign may
//!   legitimately shift regimes (warm-up → storm → rotation).
//! * **Hard SLO floors/ceilings** — "a victim's IPC ratio fell below
//!   the isolation contract" or "a victim saw violations at all."
//!   These are *gating*: [`SloTracker::breached`] reports them and
//!   `--slo-gate` turns that into a nonzero exit.
//!
//! Everything is plain f64 state on the caller thread; the tracker is
//! fed from deterministic observation points (epoch closes, campaign
//! row assembly), so its verdicts are deterministic too.

use crate::events::Event;

/// Tuning for [`SloTracker`].
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// EWMA smoothing factor in (0, 1]; higher tracks faster.
    pub alpha: f64,
    /// Z-score magnitude beyond which a sample is anomalous.
    pub z_threshold: f64,
    /// Samples a series must absorb before z-scores are trusted.
    pub warmup: usize,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            alpha: 0.3,
            z_threshold: 4.0,
            warmup: 5,
        }
    }
}

/// One detected anomaly or SLO breach.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Series name, e.g. `"tenant.t2.ipc"`.
    pub series: String,
    /// Which detector fired: `"zscore"`, `"floor"`, or `"ceiling"`.
    pub detector: &'static str,
    /// The observed value.
    pub value: f64,
    /// What the detector expected (EWMA mean, floor, or ceiling).
    pub expected: f64,
    /// Z-score at detection time (0 for floor/ceiling breaches).
    pub z: f64,
    /// Whether this finding fails `--slo-gate`.
    pub gating: bool,
}

impl Anomaly {
    /// The typed event form streamed to observers. Fractional values
    /// ride as thousandths so event payloads stay integral (and
    /// therefore deterministic to serialize).
    pub fn to_event(&self) -> Event {
        Event::Anomaly {
            series: self.series.clone(),
            detector: self.detector.to_string(),
            value_milli: to_milli(self.value),
            expected_milli: to_milli(self.expected),
            gating: self.gating,
        }
    }

    /// One-line human rendering for gate output.
    pub fn describe(&self) -> String {
        match self.detector {
            "zscore" => format!(
                "{}: value {:.3} deviates from EWMA mean {:.3} (z = {:.1})",
                self.series, self.value, self.expected, self.z
            ),
            "floor" => format!(
                "{}: value {:.3} below SLO floor {:.3}",
                self.series, self.value, self.expected
            ),
            _ => format!(
                "{}: value {:.3} above SLO ceiling {:.3}",
                self.series, self.value, self.expected
            ),
        }
    }
}

/// Saturating millisecond-style fixed-point conversion for event
/// payloads: negative and non-finite values clamp to 0 / u64::MAX.
fn to_milli(v: f64) -> u64 {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let scaled = v * 1000.0;
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled.round() as u64
    }
}

#[derive(Debug, Clone)]
struct Ewma {
    name: String,
    mean: f64,
    var: f64,
    samples: usize,
}

/// Rolling detectors over named series plus the accumulated findings.
#[derive(Debug, Default)]
pub struct SloTracker {
    policy: SloPolicy,
    series: Vec<Ewma>,
    anomalies: Vec<Anomaly>,
}

impl SloTracker {
    /// A tracker with `policy`.
    pub fn new(policy: SloPolicy) -> Self {
        SloTracker {
            policy,
            series: Vec::new(),
            anomalies: Vec::new(),
        }
    }

    /// Feeds one sample of `series` through the z-score detector.
    /// Returns the anomaly if the sample deviates past the threshold
    /// (advisory — never gating).
    pub fn observe(&mut self, series: &str, value: f64) -> Option<Anomaly> {
        if !value.is_finite() {
            return None;
        }
        let policy = self.policy.clone();
        let s = match self.series.iter_mut().find(|s| s.name == series) {
            Some(s) => s,
            None => {
                self.series.push(Ewma {
                    name: series.to_string(),
                    mean: value,
                    var: 0.0,
                    samples: 0,
                });
                self.series.last_mut().unwrap()
            }
        };
        let residual = value - s.mean;
        let sigma = s.var.max(1e-12).sqrt();
        let z = residual / sigma;
        let warmed = s.samples >= policy.warmup;
        s.mean += policy.alpha * residual;
        s.var = policy.alpha * residual * residual + (1.0 - policy.alpha) * s.var;
        s.samples += 1;
        if warmed && z.abs() > policy.z_threshold {
            let a = Anomaly {
                series: series.to_string(),
                detector: "zscore",
                value,
                expected: s.mean - policy.alpha * residual,
                z,
                gating: false,
            };
            self.anomalies.push(a.clone());
            return Some(a);
        }
        None
    }

    /// Gating check: `value` must be at least `floor`.
    pub fn check_floor(&mut self, series: &str, value: f64, floor: f64) -> Option<Anomaly> {
        if value.is_finite() && value >= floor {
            return None;
        }
        let a = Anomaly {
            series: series.to_string(),
            detector: "floor",
            value,
            expected: floor,
            z: 0.0,
            gating: true,
        };
        self.anomalies.push(a.clone());
        Some(a)
    }

    /// Gating check: `value` must not exceed `ceiling`.
    pub fn check_ceiling(&mut self, series: &str, value: f64, ceiling: f64) -> Option<Anomaly> {
        if value.is_finite() && value <= ceiling {
            return None;
        }
        let a = Anomaly {
            series: series.to_string(),
            detector: "ceiling",
            value,
            expected: ceiling,
            z: 0.0,
            gating: true,
        };
        self.anomalies.push(a.clone());
        Some(a)
    }

    /// Every finding so far, in detection order.
    pub fn anomalies(&self) -> &[Anomaly] {
        &self.anomalies
    }

    /// The gating findings only (the ones `--slo-gate` fails on).
    pub fn breaches(&self) -> Vec<&Anomaly> {
        self.anomalies.iter().filter(|a| a.gating).collect()
    }

    /// Whether any gating SLO was breached.
    pub fn breached(&self) -> bool {
        self.anomalies.iter().any(|a| a.gating)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_series_raises_nothing() {
        let mut t = SloTracker::new(SloPolicy::default());
        for _ in 0..50 {
            assert!(t.observe("tenant.t2.ipc", 0.5).is_none());
        }
        assert!(t.anomalies().is_empty());
        assert!(!t.breached());
    }

    #[test]
    fn collapse_after_warmup_is_flagged() {
        let mut t = SloTracker::new(SloPolicy::default());
        // A gently noisy baseline, then a collapse to near zero.
        for i in 0..20 {
            let wiggle = if i % 2 == 0 { 0.01 } else { -0.01 };
            t.observe("tenant.t2.ipc", 0.5 + wiggle);
        }
        let a = t.observe("tenant.t2.ipc", 0.02).expect("collapse missed");
        assert_eq!(a.detector, "zscore");
        assert!(!a.gating, "zscore anomalies are advisory");
        assert!(a.z.abs() > 4.0);
        assert!(a.describe().contains("tenant.t2.ipc"));
    }

    #[test]
    fn no_alarm_during_warmup() {
        let mut t = SloTracker::new(SloPolicy::default());
        t.observe("s", 100.0);
        // Wild swings inside the warmup window stay quiet.
        assert!(t.observe("s", 0.0).is_none());
        assert!(t.observe("s", 500.0).is_none());
    }

    #[test]
    fn floors_and_ceilings_gate() {
        let mut t = SloTracker::new(SloPolicy::default());
        assert!(t.check_floor("tenant.t2.ipc_ratio", 0.9, 0.75).is_none());
        let a = t
            .check_floor("tenant.t3.ipc_ratio", 0.4, 0.75)
            .expect("floor breach missed");
        assert!(a.gating);
        assert!(t.check_ceiling("tenant.t3.violations", 0.0, 0.0).is_none());
        assert!(t.check_ceiling("tenant.t3.violations", 2.0, 0.0).is_some());
        assert!(t.breached());
        assert_eq!(t.breaches().len(), 2);
        assert_eq!(t.anomalies().len(), 2);
    }

    #[test]
    fn non_finite_values_breach_floors_but_skip_zscore() {
        let mut t = SloTracker::new(SloPolicy::default());
        assert!(t.observe("s", f64::NAN).is_none());
        assert!(t.check_floor("s", f64::NAN, 0.5).is_some());
    }

    #[test]
    fn anomaly_events_are_integral() {
        let a = Anomaly {
            series: "tenant.t2.ipc".into(),
            detector: "floor",
            value: 0.25,
            expected: 0.75,
            z: 0.0,
            gating: true,
        };
        match a.to_event() {
            Event::Anomaly {
                series,
                detector,
                value_milli,
                expected_milli,
                gating,
            } => {
                assert_eq!(series, "tenant.t2.ipc");
                assert_eq!(detector, "floor");
                assert_eq!(value_milli, 250);
                assert_eq!(expected_milli, 750);
                assert!(gating);
            }
            other => panic!("wrong event: {other:?}"),
        }
        assert_eq!(to_milli(f64::NAN), 0);
        assert_eq!(to_milli(-3.0), 0);
        assert_eq!(to_milli(f64::INFINITY), u64::MAX);
    }
}
