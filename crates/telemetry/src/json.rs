//! A minimal JSON document builder (std-only; the build environment
//! resolves no external crates, so `serde_json` is not an option).
//!
//! Only what the exporters need: construction and serialization of the
//! value tree, with correct string escaping and stable key order
//! (insertion order — exporters control it deliberately).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the telemetry layer's native numeric type).
    U64(u64),
    /// A float, serialized with enough precision to round-trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds `key: value` to an object (panics on non-objects — builder
    /// misuse, not data-dependent).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Object fields in document order, if an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document (the inverse of the serializers above; in
    /// this no-dependency workspace the regression harness needs to read
    /// back its own `BENCH_*.json` snapshots). Non-negative integral
    /// numbers parse as [`Json::U64`], everything else numeric as
    /// [`Json::F64`]. Errors carry a byte offset.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// Recursive-descent JSON parser over raw bytes (ASCII structure;
/// multi-byte UTF-8 passes through inside strings untouched).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object_value(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_serializes_compact() {
        let doc = Json::object()
            .set("name", "plutus")
            .set("bytes", 1024u64)
            .set("ratio", 0.5)
            .set("ok", true)
            .set("tags", Json::Array(vec![Json::from("a"), Json::from("b")]));
        assert_eq!(
            doc.to_string_compact(),
            r#"{"name":"plutus","bytes":1024,"ratio":0.5,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(doc.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_output_is_indented() {
        let doc = Json::object()
            .set("a", 1u64)
            .set("b", Json::Array(vec![Json::U64(2)]));
        let s = doc.to_string_pretty();
        assert!(s.contains("\n  \"a\": 1"), "got: {s}");
        assert!(s.ends_with('}'));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::object().to_string_pretty(), "{}");
        assert_eq!(Json::Array(vec![]).to_string_compact(), "[]");
        assert_eq!(Json::Null.to_string_compact(), "null");
    }

    #[test]
    fn accessors() {
        let doc = Json::object().set("n", 3u64);
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::F64(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::U64(3).as_f64(), Some(3.0));
        assert_eq!(Json::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
        assert_eq!(doc.as_object().map(<[(String, Json)]>::len), Some(1));
    }

    #[test]
    fn parse_roundtrips_serializer_output() {
        let doc = Json::object()
            .set("name", "plutus \"v2\"\n")
            .set("bytes", 1024u64)
            .set("ratio", 0.5)
            .set("neg", -1.5)
            .set("ok", true)
            .set("none", Json::Null)
            .set("tags", Json::Array(vec![Json::from("a"), Json::U64(7)]))
            .set("nested", Json::object().set("k", 2u64));
        for s in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&s).unwrap(), doc, "failed on: {s}");
        }
    }

    #[test]
    fn parse_numbers_pick_native_types() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-3").unwrap(), Json::F64(-3.0));
        assert_eq!(Json::parse("2.5").unwrap(), Json::F64(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn parse_handles_escapes_and_whitespace() {
        let v = Json::parse(" { \"a\\u0041\\t\" : [ 1 , \"b\" ] } ").unwrap();
        assert_eq!(
            v.get("aA\t").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::object());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
