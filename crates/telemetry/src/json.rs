//! A minimal JSON document builder (std-only; the build environment
//! resolves no external crates, so `serde_json` is not an option).
//!
//! Only what the exporters need: construction and serialization of the
//! value tree, with correct string escaping and stable key order
//! (insertion order — exporters control it deliberately).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the telemetry layer's native numeric type).
    U64(u64),
    /// A float, serialized with enough precision to round-trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds `key: value` to an object (panics on non-objects — builder
    /// misuse, not data-dependent).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Array elements, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_serializes_compact() {
        let doc = Json::object()
            .set("name", "plutus")
            .set("bytes", 1024u64)
            .set("ratio", 0.5)
            .set("ok", true)
            .set("tags", Json::Array(vec![Json::from("a"), Json::from("b")]));
        assert_eq!(
            doc.to_string_compact(),
            r#"{"name":"plutus","bytes":1024,"ratio":0.5,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(doc.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_output_is_indented() {
        let doc = Json::object()
            .set("a", 1u64)
            .set("b", Json::Array(vec![Json::U64(2)]));
        let s = doc.to_string_pretty();
        assert!(s.contains("\n  \"a\": 1"), "got: {s}");
        assert!(s.ends_with('}'));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::object().to_string_pretty(), "{}");
        assert_eq!(Json::Array(vec![]).to_string_compact(), "[]");
        assert_eq!(Json::Null.to_string_compact(), "null");
    }

    #[test]
    fn accessors() {
        let doc = Json::object().set("n", 3u64);
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::F64(f64::NAN).to_string_compact(), "null");
    }
}
