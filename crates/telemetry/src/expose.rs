//! Prometheus text exposition for live scraping (`--serve-metrics`).
//!
//! Two layers: [`prometheus_text`] renders a registry [`Snapshot`] in
//! the Prometheus text exposition format (version 0.0.4 — the format
//! every scraper and `curl | grep` understands), and [`MetricsServer`]
//! is a deliberately tiny std-only HTTP endpoint serving it: one
//! listener thread, one request at a time, no keep-alive, no external
//! dependencies. A soak campaign is a single process that already
//! saturates the cores with workers; a second hyper-style server inside
//! it would be waste. Scrapes read whatever the atomics hold at that
//! instant — no locks are taken on the hot path.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::{HistogramSnapshot, Snapshot};
use crate::Telemetry;

/// Renders `snap` in Prometheus text exposition format. Metric names
/// are sanitized (`.` and `-` become `_`); counters gain the
/// conventional `_total` suffix; log-scale histograms are emitted as
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
/// Output order follows registration order, so it is deterministic.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n}_total counter\n{n}_total {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        push_histogram(&mut out, &n, h);
    }
    out
}

fn push_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for b in &h.buckets {
        cumulative += b.count;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{hi}\"}} {cumulative}\n",
            hi = b.hi
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Maps a telemetry metric name onto the Prometheus name charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The std-only scrape endpoint: serves the current registry snapshot
/// at every path on a single listener thread until dropped or
/// [`MetricsServer::shutdown`].
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`; port 0 picks a free port)
    /// and starts serving `tel`'s registry.
    pub fn serve(tel: Telemetry, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("plutus-metrics-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // One scrape at a time; errors just drop the socket.
                    let _ = answer(stream, &tel);
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful when serving on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads (and discards) the request head, then writes one 200 response
/// carrying the exposition body.
fn answer(mut stream: TcpStream, tel: &Telemetry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    // A scrape request head fits one read in practice; tolerate clients
    // that send nothing (the shutdown self-connect does).
    let _ = stream.read(&mut buf);
    let body = prometheus_text(&tel.snapshot());
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_covers_all_metric_types() {
        let tel = Telemetry::new();
        tel.counter("traffic.mac.read_bytes").add(64);
        tel.gauge("dram.backlog_bytes").set(128);
        let h = tel.histogram("fill.latency_cycles");
        h.record(3);
        h.record(900);
        let text = prometheus_text(&tel.snapshot());
        assert!(text.contains("# TYPE traffic_mac_read_bytes_total counter"));
        assert!(text.contains("traffic_mac_read_bytes_total 64"));
        assert!(text.contains("dram_backlog_bytes 128"));
        assert!(text.contains("fill_latency_cycles_bucket{le=\"3\"} 1"));
        assert!(text.contains("fill_latency_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("fill_latency_cycles_sum 903"));
        assert!(text.contains("fill_latency_cycles_count 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let tel = Telemetry::new();
        let h = tel.histogram("lat");
        for v in [1, 2, 2, 900] {
            h.record(v);
        }
        let text = prometheus_text(&tel.snapshot());
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3"));
        assert!(text.contains("lat_bucket{le=\"1023\"} 4"));
    }

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize("traffic.mac.read-bytes"), "traffic_mac_read_bytes");
        assert_eq!(sanitize("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn server_serves_scrapes_and_shuts_down() {
        let tel = Telemetry::new();
        tel.counter("scrapes.visible").add(7);
        let mut server = MetricsServer::serve(tel.clone(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        for _ in 0..2 {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.1 200 OK"), "got: {response}");
            assert!(response.contains("scrapes_visible_total 7"));
        }
        // A mid-run update is visible on the next scrape.
        tel.counter("scrapes.visible").add(1);
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.contains("scrapes_visible_total 8"));
        server.shutdown();
        // Idempotent.
        server.shutdown();
    }
}
