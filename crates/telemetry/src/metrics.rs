//! The metrics registry: named counters, gauges, and log-scale
//! histograms with cheap `Arc`-shared handles and atomic updates.
//!
//! Handles are `Clone + Send + Sync`; cloning shares the underlying
//! atomic cell, so per-partition engine instances aggregate into one
//! named metric. Disabled handles (from [`Counter::disabled`] etc.) are
//! *branch-free* no-ops: every record call executes the same masked
//! atomic instruction sequence, with the mask zeroing the operand, so
//! the hot path carries no conditional at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const REL: Ordering = Ordering::Relaxed;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    mask: u64,
}

impl Counter {
    fn live(cell: Arc<AtomicU64>) -> Self {
        Self {
            cell,
            mask: u64::MAX,
        }
    }

    /// A detached no-op counter: `add`/`inc` are branch-free no-ops.
    pub fn disabled() -> Self {
        Self {
            cell: Arc::new(AtomicU64::new(0)),
            mask: 0,
        }
    }

    /// Adds `n` (no-op when disabled, without branching).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n & self.mask, REL);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(REL)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A last-value gauge handle (also tracks via [`Gauge::set_max`]).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    mask: u64,
}

impl Gauge {
    fn live(cell: Arc<AtomicU64>) -> Self {
        Self {
            cell,
            mask: u64::MAX,
        }
    }

    /// A detached no-op gauge.
    pub fn disabled() -> Self {
        Self {
            cell: Arc::new(AtomicU64::new(0)),
            mask: 0,
        }
    }

    /// Sets the gauge to `v` (masked store; no-op when disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v & self.mask, REL);
    }

    /// Raises the gauge to `v` if larger.
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.cell.fetch_max(v & self.mask, REL);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(REL)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Shared storage of one histogram: 65 base-2 buckets (bucket 0 holds
/// zeros; bucket `b ≥ 1` holds values in `[2^(b-1), 2^b)`).
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(REL);
        HistogramSnapshot {
            count,
            sum: self.sum.load(REL),
            min: if count == 0 { 0 } else { self.min.load(REL) },
            max: self.max.load(REL),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(REL);
                    (n != 0).then_some((bucket_bounds(i), n))
                })
                .map(|((lo, hi), n)| BucketCount { lo, hi, count: n })
                .collect(),
        }
    }
}

/// Inclusive `[lo, hi]` bounds of log bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

/// Index of the log bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// A log-scale histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    /// `u64::MAX` when live, 0 when disabled.
    mask: u64,
    /// `!mask` — ORed into `fetch_min` operands so a disabled record
    /// degenerates to `fetch_min(u64::MAX)`, a no-op.
    inv: u64,
}

impl Histogram {
    fn live(core: Arc<HistogramCore>) -> Self {
        Self {
            core,
            mask: u64::MAX,
            inv: 0,
        }
    }

    /// A detached no-op histogram.
    pub fn disabled() -> Self {
        Self {
            core: Arc::new(HistogramCore::new()),
            mask: 0,
            inv: u64::MAX,
        }
    }

    /// Records one observation (branch-free no-op when disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = bucket_index(v & self.mask);
        self.core.buckets[idx].fetch_add(1 & self.mask, REL);
        self.core.count.fetch_add(1 & self.mask, REL);
        self.core.sum.fetch_add(v & self.mask, REL);
        self.core.min.fetch_min(v | self.inv, REL);
        self.core.max.fetch_max(v & self.mask, REL);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(REL)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(REL)
    }

    /// A point-in-time copy of the full distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Inclusive upper bound of the bucket.
    pub hi: u64,
    /// Observations that fell in `[lo, hi]`.
    pub count: u64,
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 if empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty buckets in ascending order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0.0..=1.0) —
    /// a log-resolution estimate, exact enough for p50/p95 reporting.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= target {
                return b.hi.min(self.max);
            }
        }
        self.max
    }
}

/// The registry of all named metrics. Names are registered on first use;
/// asking for an existing name returns a handle to the same cell.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    gauges: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    histograms: Mutex<Vec<(String, Arc<HistogramCore>)>>,
}

fn intern<T>(
    table: &Mutex<Vec<(String, Arc<T>)>>,
    name: &str,
    fresh: impl FnOnce() -> T,
) -> Arc<T> {
    let mut table = table.lock().unwrap();
    if let Some((_, cell)) = table.iter().find(|(n, _)| n == name) {
        return Arc::clone(cell);
    }
    let cell = Arc::new(fresh());
    table.push((name.to_string(), Arc::clone(&cell)));
    cell
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A live handle to the counter `name` (registering it if new).
    pub fn counter(&self, name: &str) -> Counter {
        Counter::live(intern(&self.counters, name, || AtomicU64::new(0)))
    }

    /// A live handle to the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge::live(intern(&self.gauges, name, || AtomicU64::new(0)))
    }

    /// A live handle to the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram::live(intern(&self.histograms, name, HistogramCore::new))
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self, time: u64) -> Snapshot {
        let read = |t: &Mutex<Vec<(String, Arc<AtomicU64>)>>| {
            t.lock()
                .unwrap()
                .iter()
                .map(|(n, c)| (n.clone(), c.load(REL)))
                .collect::<Vec<_>>()
        };
        Snapshot {
            time,
            counters: read(&self.counters),
            gauges: read(&self.gauges),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Clock reading when the snapshot was taken.
    pub time: u64,
    /// `(name, value)` for every counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, distribution)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of counter `name`, if registered at snapshot time.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Per-counter deltas since `earlier`. Counters are monotonic, so
    /// deltas are non-negative; counters registered after `earlier` was
    /// taken contribute their full value.
    pub fn counter_deltas(&self, earlier: &Snapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(n, v)| {
                let before = earlier.counter(n).unwrap_or(0);
                (n.clone(), v.saturating_sub(before))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot(0).counter("x"), Some(4));
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let c = Counter::disabled();
        c.add(100);
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(7);
        g.set_max(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::disabled();
        h.record(42);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn gauge_set_and_max() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // 0 → [0,0]; 1 → [1,1]; 2,3 → [2,3]; 4 → [4,7]; 1000 → [512,1023].
        let lows: Vec<u64> = s.buckets.iter().map(|b| b.lo).collect();
        assert_eq!(lows, vec![0, 1, 2, 4, 512]);
        assert_eq!(s.buckets[2].count, 2);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let h = MetricsRegistry::new().histogram("q");
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        let s = h.snapshot();
        assert!((s.mean() - (99.0 * 10.0 + 100_000.0) / 100.0).abs() < 1e-9);
        assert_eq!(s.quantile(0.5), 15); // bucket [8,15]
        assert_eq!(s.quantile(1.0), 100_000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_deltas_are_nonnegative_and_complete() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a");
        c.add(10);
        let s1 = reg.snapshot(1);
        c.add(5);
        let d = reg.counter("b"); // registered between snapshots
        d.add(2);
        let s2 = reg.snapshot(2);
        let deltas = s2.counter_deltas(&s1);
        assert_eq!(deltas, vec![("a".to_string(), 5), ("b".to_string(), 2)]);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(5), (16, 31));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
        for v in [0u64, 1, 2, 7, 8, 1 << 40, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}]");
        }
    }
}
