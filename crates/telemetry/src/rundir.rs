//! The process-wide run directory (`--run-dir`).
//!
//! Historically every writer scattered its artifacts: campaign reports
//! under `target/experiments/`, metrics/ledger/trace/bench snapshots
//! wherever the flag pointed. A run directory gathers one run's entire
//! output — reports, stream, manifest — into a single self-describing
//! artifact that `obs-diff` can compare against another run.
//!
//! This is a process-wide setting (one CLI invocation is one run), so
//! it lives in a `static`. Writers consult [`report_dir`] instead of
//! hardcoding `target/experiments`, and CLI output flags route relative
//! paths through [`in_run_dir`].

use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Schema tag of `manifest.json` inside a run directory.
pub const MANIFEST_SCHEMA: &str = "plutus-manifest/v1";

/// File name of the run manifest inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.json";

static RUN_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Declares `dir` the run directory for this process, creating it if
/// missing. Subsequent [`report_dir`] / [`in_run_dir`] calls route
/// output there.
pub fn set_run_dir(dir: impl AsRef<Path>) -> std::io::Result<()> {
    let dir = dir.as_ref().to_path_buf();
    std::fs::create_dir_all(&dir)?;
    *RUN_DIR.lock().unwrap() = Some(dir);
    Ok(())
}

/// Clears the run directory (tests only — one process is one run).
pub fn clear_run_dir() {
    *RUN_DIR.lock().unwrap() = None;
}

/// The active run directory, if one was set.
pub fn run_dir() -> Option<PathBuf> {
    RUN_DIR.lock().unwrap().clone()
}

/// Where report writers should put their files: the run directory when
/// set, the traditional `target/experiments` otherwise.
pub fn report_dir() -> PathBuf {
    run_dir().unwrap_or_else(|| PathBuf::from("target/experiments"))
}

/// Routes `path` into the run directory when one is set and `path` is
/// relative; absolute paths and no-run-dir invocations pass through
/// unchanged (explicit destinations always win).
pub fn in_run_dir(path: impl AsRef<Path>) -> PathBuf {
    let path = path.as_ref();
    match run_dir() {
        Some(dir) if path.is_relative() => dir.join(path),
        _ => path.to_path_buf(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole lifecycle: the static is
    // process-wide, so independent tests would race each other.
    #[test]
    fn run_dir_routes_reports_and_relative_paths() {
        let dir = std::env::temp_dir().join(format!("plutus-rundir-{}", std::process::id()));
        clear_run_dir();
        assert_eq!(report_dir(), PathBuf::from("target/experiments"));
        assert_eq!(in_run_dir("metrics.json"), PathBuf::from("metrics.json"));

        set_run_dir(&dir).unwrap();
        assert!(dir.is_dir());
        assert_eq!(run_dir(), Some(dir.clone()));
        assert_eq!(report_dir(), dir.clone());
        assert_eq!(in_run_dir("metrics.json"), dir.join("metrics.json"));
        // Absolute paths are left alone.
        let abs = std::env::temp_dir().join("explicit.json");
        assert_eq!(in_run_dir(&abs), abs);

        clear_run_dir();
        assert_eq!(run_dir(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
