//! Typed events and the bounded event log.
//!
//! Events capture *discrete* happenings on the secure-memory pipeline —
//! a MAC fetch, a compact-counter overflow, a BMT walk of a given depth
//! — with a timestamp from the telemetry clock. High-frequency totals
//! belong in [`crate::MetricsRegistry`] counters; the event log is for
//! timelines and post-mortems, so it is bounded: once full, new events
//! are counted as dropped rather than growing without limit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A structured event on the secure-memory pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A benchmark run started.
    RunStart {
        /// Workload name.
        workload: String,
        /// Scheme label.
        scheme: String,
    },
    /// A benchmark run finished.
    RunEnd {
        /// Workload name.
        workload: String,
        /// Scheme label.
        scheme: String,
    },
    /// A sector was verified by value reuse alone (no MAC fetch).
    ValueVerified,
    /// A value-cache probe hit (`pinned` when the entry was pinned).
    ValueCacheHit {
        /// Whether the hit landed in the pinned region.
        pinned: bool,
    },
    /// A value-cache probe missed.
    ValueCacheMiss,
    /// A transient value-cache entry was promoted to pinned.
    ValueCachePromotion,
    /// A MAC line was fetched from DRAM.
    MacFetch {
        /// Sector address whose MAC was fetched.
        addr: u64,
    },
    /// A MAC fetch was avoided by value verification.
    MacFetchAvoided,
    /// A MAC update was skipped on a write (pinned-value guarantee).
    MacUpdateSkipped,
    /// A compact counter saturated and fell back to the original
    /// counters ("overflow" in the paper's Fig. 13 terminology).
    CompactOverflow {
        /// Sector address whose compact counter saturated.
        addr: u64,
    },
    /// Adaptive compaction disabled itself for a write-hot block.
    CompactDisable {
        /// Block address compaction gave up on.
        addr: u64,
    },
    /// A read fell back from compact to original counters.
    CompactFallback,
    /// An encryption-counter line was fetched from DRAM.
    CounterFetch {
        /// Sector address whose counter was fetched.
        addr: u64,
    },
    /// A BMT verification walk terminated after `depth` levels.
    BmtWalk {
        /// Number of tree levels climbed before hitting a cached node
        /// or the root.
        depth: u32,
    },
    /// An integrity violation was raised.
    Violation {
        /// Human-readable description of the violation.
        kind: String,
        /// Stable label of the verification layer that caught it
        /// (e.g. `"mac"`, `"value_verification"`, `"bmt"`).
        layer: String,
        /// Verification latency in cycles of the detecting request.
        latency: u64,
    },
    /// A scheduled fault was injected into the memory system.
    FaultInjected {
        /// Raw address of the targeted data sector.
        addr: u64,
        /// Stable label of the fault kind (e.g. `"corrupt_data"`).
        kind: String,
    },
    /// One simulation epoch ended (snapshot taken).
    EpochEnd {
        /// Epoch label.
        label: String,
    },
    /// A transient (soft-error) fault struck a fill.
    TransientFault {
        /// Raw address of the afflicted fill.
        addr: u64,
        /// Stable label of the transient kind (e.g. `"transient_data"`).
        kind: String,
    },
    /// A failed fill verification was re-fetched by the retry path.
    FillRetry {
        /// Raw address of the retried fill.
        addr: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
    },
    /// A transient fault was cleared by the bounded retry path.
    TransientRecovered {
        /// Raw address of the recovered fill.
        addr: u64,
        /// Retry attempts the recovery took.
        retries: u32,
    },
    /// An engine downgraded itself after repeated fill failures.
    Degraded {
        /// Stable label of the degradation step (e.g.
        /// `"value_cache_disabled"`, `"compact_block_frozen"`).
        mode: String,
        /// Raw address of the fill that tripped the downgrade.
        addr: u64,
    },
    /// A metadata checkpoint was taken.
    Checkpoint {
        /// Simulated cycle of the snapshot.
        cycle: u64,
    },
    /// Volatile metadata was reverted to a checkpoint (simulated crash).
    CrashRestore {
        /// Cycle of the checkpoint restored to.
        checkpoint_cycle: u64,
    },
    /// A command-line error routed through the event log.
    CliError {
        /// The error message shown to the user.
        message: String,
    },
    /// A heartbeat progress tick from the executor pool.
    PoolProgress {
        /// Jobs finished so far this run.
        done: u64,
        /// Jobs submitted this run.
        total: u64,
        /// Jobs executing at tick time.
        running: u64,
    },
    /// The pool watchdog flagged a straggling job (`[SLOW]`).
    JobSlow {
        /// Label of the straggling job.
        label: String,
        /// How long it had been running when flagged, in milliseconds.
        elapsed_ms: u64,
    },
    /// An SLO detector finding (see [`crate::SloTracker`]). Fractional
    /// values ride as thousandths so payloads stay integral.
    Anomaly {
        /// Series the detector watched, e.g. `"tenant.t2.ipc"`.
        series: String,
        /// Which detector fired: `"zscore"`, `"floor"`, `"ceiling"`.
        detector: String,
        /// Observed value × 1000.
        value_milli: u64,
        /// Expected value (EWMA mean or bound) × 1000.
        expected_milli: u64,
        /// Whether this finding fails `--slo-gate`.
        gating: bool,
    },
    /// A free-form event for call sites without a dedicated variant.
    Custom {
        /// Static event name.
        name: &'static str,
        /// Event payload.
        value: u64,
    },
}

impl Event {
    /// Stable kind label used by exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::RunEnd { .. } => "run_end",
            Event::ValueVerified => "value_verified",
            Event::ValueCacheHit { .. } => "value_cache_hit",
            Event::ValueCacheMiss => "value_cache_miss",
            Event::ValueCachePromotion => "value_cache_promotion",
            Event::MacFetch { .. } => "mac_fetch",
            Event::MacFetchAvoided => "mac_fetch_avoided",
            Event::MacUpdateSkipped => "mac_update_skipped",
            Event::CompactOverflow { .. } => "compact_overflow",
            Event::CompactDisable { .. } => "compact_disable",
            Event::CompactFallback => "compact_fallback",
            Event::CounterFetch { .. } => "counter_fetch",
            Event::BmtWalk { .. } => "bmt_walk",
            Event::Violation { .. } => "violation",
            Event::FaultInjected { .. } => "fault_injected",
            Event::EpochEnd { .. } => "epoch_end",
            Event::TransientFault { .. } => "transient_fault",
            Event::FillRetry { .. } => "fill_retry",
            Event::TransientRecovered { .. } => "transient_recovered",
            Event::Degraded { .. } => "degraded",
            Event::Checkpoint { .. } => "checkpoint",
            Event::CrashRestore { .. } => "crash_restore",
            Event::CliError { .. } => "cli_error",
            Event::PoolProgress { .. } => "sched_progress",
            Event::JobSlow { .. } => "sched_slow",
            Event::Anomaly { .. } => "anomaly",
            Event::Custom { .. } => "custom",
        }
    }

    /// `(field, value)` payload pairs for exporters.
    pub fn fields(&self) -> Vec<(&'static str, FieldValue)> {
        use FieldValue::*;
        match self {
            Event::RunStart { workload, scheme } | Event::RunEnd { workload, scheme } => {
                vec![
                    ("workload", Str(workload.clone())),
                    ("scheme", Str(scheme.clone())),
                ]
            }
            Event::ValueCacheHit { pinned } => vec![("pinned", Bool(*pinned))],
            Event::MacFetch { addr }
            | Event::CompactOverflow { addr }
            | Event::CompactDisable { addr }
            | Event::CounterFetch { addr } => vec![("addr", Num(*addr))],
            Event::BmtWalk { depth } => vec![("depth", Num(u64::from(*depth)))],
            Event::Violation {
                kind,
                layer,
                latency,
            } => vec![
                ("kind", Str(kind.clone())),
                ("layer", Str(layer.clone())),
                ("latency_cycles", Num(*latency)),
            ],
            Event::FaultInjected { addr, kind } => {
                vec![("addr", Num(*addr)), ("kind", Str(kind.clone()))]
            }
            Event::EpochEnd { label } => vec![("label", Str(label.clone()))],
            Event::TransientFault { addr, kind } => {
                vec![("addr", Num(*addr)), ("kind", Str(kind.clone()))]
            }
            Event::FillRetry { addr, attempt } => {
                vec![("addr", Num(*addr)), ("attempt", Num(u64::from(*attempt)))]
            }
            Event::TransientRecovered { addr, retries } => {
                vec![("addr", Num(*addr)), ("retries", Num(u64::from(*retries)))]
            }
            Event::Degraded { mode, addr } => {
                vec![("mode", Str(mode.clone())), ("addr", Num(*addr))]
            }
            Event::Checkpoint { cycle } => vec![("cycle", Num(*cycle))],
            Event::CrashRestore { checkpoint_cycle } => {
                vec![("checkpoint_cycle", Num(*checkpoint_cycle))]
            }
            Event::CliError { message } => vec![("message", Str(message.clone()))],
            Event::PoolProgress {
                done,
                total,
                running,
            } => vec![
                ("done", Num(*done)),
                ("total", Num(*total)),
                ("running", Num(*running)),
            ],
            Event::JobSlow { label, elapsed_ms } => vec![
                ("label", Str(label.clone())),
                ("elapsed_ms", Num(*elapsed_ms)),
            ],
            Event::Anomaly {
                series,
                detector,
                value_milli,
                expected_milli,
                gating,
            } => vec![
                ("series", Str(series.clone())),
                ("detector", Str(detector.clone())),
                ("value_milli", Num(*value_milli)),
                ("expected_milli", Num(*expected_milli)),
                ("gating", Bool(*gating)),
            ],
            Event::Custom { name, value } => {
                vec![("name", Str((*name).to_string())), ("value", Num(*value))]
            }
            _ => vec![],
        }
    }
}

/// Every stable event kind label, in declaration order — the reference
/// the `METRICS.md` sync test checks documentation against. Adding an
/// [`Event`] variant without extending this list fails
/// `event_kinds_catalog_is_complete`.
pub const EVENT_KINDS: &[&str] = &[
    "run_start",
    "run_end",
    "value_verified",
    "value_cache_hit",
    "value_cache_miss",
    "value_cache_promotion",
    "mac_fetch",
    "mac_fetch_avoided",
    "mac_update_skipped",
    "compact_overflow",
    "compact_disable",
    "compact_fallback",
    "counter_fetch",
    "bmt_walk",
    "violation",
    "fault_injected",
    "epoch_end",
    "transient_fault",
    "fill_retry",
    "transient_recovered",
    "degraded",
    "checkpoint",
    "crash_restore",
    "cli_error",
    "sched_progress",
    "sched_slow",
    "anomaly",
    "custom",
];

/// A typed event payload value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer payload.
    Num(u64),
    /// String payload.
    Str(String),
    /// Boolean payload.
    Bool(bool),
}

/// An [`Event`] plus the clock reading when it was recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Clock reading at record time.
    pub time: u64,
    /// The event.
    pub event: Event,
}

/// Default bound on retained events.
pub const DEFAULT_EVENT_CAPACITY: usize = 16_384;

/// A bounded, thread-safe event log. When full, new events are dropped
/// (and counted) rather than evicting history: the head of a timeline
/// is usually more diagnostic than its tail.
#[derive(Debug)]
pub struct EventLog {
    events: Mutex<VecDeque<TimedEvent>>,
    capacity: usize,
    dropped: AtomicU64,
    high_water: AtomicU64,
}

impl EventLog {
    /// A log retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Mutex::new(VecDeque::new()),
            capacity,
            dropped: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// A log that records nothing (capacity 0).
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }

    /// Records `event` at time `time`.
    pub fn record(&self, time: u64, event: Event) {
        if self.capacity == 0 {
            return;
        }
        let mut events = self.events.lock().unwrap();
        if events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push_back(TimedEvent { time, event });
            self.high_water
                .fetch_max(events.len() as u64, Ordering::Relaxed);
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most events the log ever held at once (a gauge of how close
    /// the run came to the capacity bound; equals `capacity` iff any
    /// event was dropped).
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// A copy of the retained events, oldest first.
    pub fn to_vec(&self) -> Vec<TimedEvent> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Removes and returns all retained events, oldest first.
    pub fn drain(&self) -> Vec<TimedEvent> {
        self.events.lock().unwrap().drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let log = EventLog::with_capacity(10);
        log.record(1, Event::ValueCacheMiss);
        log.record(2, Event::BmtWalk { depth: 3 });
        let v = log.to_vec();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].time, 1);
        assert_eq!(v[1].event, Event::BmtWalk { depth: 3 });
    }

    #[test]
    fn bounded_log_counts_drops() {
        let log = EventLog::with_capacity(2);
        for i in 0..5 {
            log.record(i, Event::ValueCacheMiss);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        // Overflow pins the high-water mark at capacity.
        assert_eq!(log.high_water(), 2);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let log = EventLog::with_capacity(8);
        assert_eq!(log.high_water(), 0);
        log.record(0, Event::ValueCacheMiss);
        log.record(1, Event::ValueCacheMiss);
        log.record(2, Event::ValueCacheMiss);
        assert_eq!(log.high_water(), 3);
        // Draining does not reset the peak.
        log.drain();
        assert_eq!(log.high_water(), 3);
        log.record(3, Event::ValueCacheMiss);
        assert_eq!(log.high_water(), 3);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = EventLog::disabled();
        log.record(0, Event::MacFetchAvoided);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.high_water(), 0);
    }

    #[test]
    fn drain_empties_the_log() {
        let log = EventLog::with_capacity(4);
        log.record(0, Event::ValueCacheMiss);
        assert_eq!(log.drain().len(), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn kinds_and_fields_are_stable() {
        let e = Event::MacFetch { addr: 0x40 };
        assert_eq!(e.kind(), "mac_fetch");
        assert_eq!(e.fields(), vec![("addr", FieldValue::Num(0x40))]);
        assert!(Event::ValueCacheMiss.fields().is_empty());
        let v = Event::Violation {
            kind: "MAC mismatch at 0x40".into(),
            layer: "mac".into(),
            latency: 17,
        };
        assert_eq!(v.kind(), "violation");
        assert_eq!(
            v.fields(),
            vec![
                ("kind", FieldValue::Str("MAC mismatch at 0x40".into())),
                ("layer", FieldValue::Str("mac".into())),
                ("latency_cycles", FieldValue::Num(17)),
            ]
        );
        let fi = Event::FaultInjected {
            addr: 0x80,
            kind: "corrupt_data".into(),
        };
        assert_eq!(fi.kind(), "fault_injected");
        assert_eq!(
            fi.fields(),
            vec![
                ("addr", FieldValue::Num(0x80)),
                ("kind", FieldValue::Str("corrupt_data".into())),
            ]
        );
        assert_eq!(
            Event::RunStart {
                workload: "bfs".into(),
                scheme: "plutus".into()
            }
            .kind(),
            "run_start"
        );
    }

    /// One sample of every variant; the catalog must know each kind.
    fn one_of_each() -> Vec<Event> {
        vec![
            Event::RunStart {
                workload: "bfs".into(),
                scheme: "plutus".into(),
            },
            Event::RunEnd {
                workload: "bfs".into(),
                scheme: "plutus".into(),
            },
            Event::ValueVerified,
            Event::ValueCacheHit { pinned: true },
            Event::ValueCacheMiss,
            Event::ValueCachePromotion,
            Event::MacFetch { addr: 1 },
            Event::MacFetchAvoided,
            Event::MacUpdateSkipped,
            Event::CompactOverflow { addr: 1 },
            Event::CompactDisable { addr: 1 },
            Event::CompactFallback,
            Event::CounterFetch { addr: 1 },
            Event::BmtWalk { depth: 1 },
            Event::Violation {
                kind: "k".into(),
                layer: "mac".into(),
                latency: 1,
            },
            Event::FaultInjected {
                addr: 1,
                kind: "corrupt_data".into(),
            },
            Event::EpochEnd { label: "e".into() },
            Event::TransientFault {
                addr: 1,
                kind: "transient_data".into(),
            },
            Event::FillRetry {
                addr: 1,
                attempt: 1,
            },
            Event::TransientRecovered {
                addr: 1,
                retries: 1,
            },
            Event::Degraded {
                mode: "m".into(),
                addr: 1,
            },
            Event::Checkpoint { cycle: 1 },
            Event::CrashRestore {
                checkpoint_cycle: 1,
            },
            Event::CliError {
                message: "m".into(),
            },
            Event::PoolProgress {
                done: 1,
                total: 2,
                running: 1,
            },
            Event::JobSlow {
                label: "l".into(),
                elapsed_ms: 5,
            },
            Event::Anomaly {
                series: "s".into(),
                detector: "floor".into(),
                value_milli: 1,
                expected_milli: 2,
                gating: true,
            },
            Event::Custom {
                name: "n",
                value: 1,
            },
        ]
    }

    #[test]
    fn event_kinds_catalog_is_complete() {
        let samples = one_of_each();
        // Every sample's kind is cataloged, and the catalog holds no
        // stale entries beyond the sampled kinds.
        let mut kinds: Vec<&str> = samples.iter().map(Event::kind).collect();
        kinds.dedup();
        assert_eq!(kinds, EVENT_KINDS, "EVENT_KINDS out of sync with Event");
    }

    #[test]
    fn new_observability_events_carry_their_payloads() {
        let p = Event::PoolProgress {
            done: 3,
            total: 8,
            running: 2,
        };
        assert_eq!(p.kind(), "sched_progress");
        assert_eq!(
            p.fields(),
            vec![
                ("done", FieldValue::Num(3)),
                ("total", FieldValue::Num(8)),
                ("running", FieldValue::Num(2)),
            ]
        );
        let s = Event::JobSlow {
            label: "bfs/plutus#2".into(),
            elapsed_ms: 1500,
        };
        assert_eq!(s.kind(), "sched_slow");
        assert_eq!(
            s.fields(),
            vec![
                ("label", FieldValue::Str("bfs/plutus#2".into())),
                ("elapsed_ms", FieldValue::Num(1500)),
            ]
        );
        let a = Event::Anomaly {
            series: "tenant.t2.ipc".into(),
            detector: "zscore".into(),
            value_milli: 20,
            expected_milli: 500,
            gating: false,
        };
        assert_eq!(a.kind(), "anomaly");
        assert_eq!(a.fields().len(), 5);
    }
}
