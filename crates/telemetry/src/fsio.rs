//! Crash-safe file output.
//!
//! Every report the workspace writes — campaign JSON/CSV, metrics
//! exports, bench snapshots, cycle ledgers — goes through
//! [`atomic_write`]: the bytes land in a temporary sibling first and are
//! moved over the destination with a rename, which is atomic on POSIX
//! filesystems. A reader (CI collecting artifacts, a dashboard tailing
//! `target/experiments/`) therefore never observes a half-written file,
//! and a crash mid-write leaves the previous version intact.

use std::io;
use std::path::Path;

/// Writes `contents` to `path` atomically: the data goes to a temporary
/// file in the same directory (same filesystem, so the final rename
/// cannot degrade into a copy) and replaces `path` only once fully
/// flushed. On any error the destination is untouched; the temporary is
/// cleaned up best-effort.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "cannot atomically write to {}: no file name",
                path.display()
            ),
        )
    })?;
    // Pid-tagged sibling: concurrent writers of the same report (two
    // campaign processes racing) each stage privately and the last
    // rename wins whole, never interleaved.
    let tmp_name = format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = std::fs::write(&tmp, contents).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("plutus-fsio-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("report.json");
        atomic_write(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // No temporary left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temps: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_destination_intact() {
        let dir = tmp_dir("intact");
        let path = dir.join("report.json");
        atomic_write(&path, "good").unwrap();
        // Writing *through* a path whose parent is a regular file fails.
        let bad = path.join("child.json");
        assert!(atomic_write(&bad, "bad").is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "good");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_pathless_destination() {
        assert!(atomic_write(std::path::PathBuf::from(".."), "x").is_err());
    }

    #[test]
    fn bare_relative_file_name_works() {
        let dir = tmp_dir("bare");
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        atomic_write("bare.txt", "data").unwrap();
        let content = std::fs::read_to_string(dir.join("bare.txt")).unwrap();
        std::env::set_current_dir(prev).unwrap();
        assert_eq!(content, "data");
        std::fs::remove_dir_all(&dir).ok();
    }
}
