//! **plutus-telemetry** — a workspace-wide metrics, event-tracing, and
//! profiling layer for the Plutus secure-memory pipeline.
//!
//! The paper's whole argument is quantitative: Plutus wins by cutting
//! metadata *traffic*. This crate is the substrate every measurement
//! flows through:
//!
//! * a [`MetricsRegistry`] of named [`Counter`]s, [`Gauge`]s, and
//!   log-scale [`Histogram`]s with cheap `Arc`-shared handles and
//!   atomic updates;
//! * a structured [`Event`] log plus [`Span`] guards that profile
//!   wall-clock time, with event timestamps read from a pluggable
//!   [`Clock`] (simulated cycles or nanoseconds);
//! * per-epoch snapshot/delta support ([`Telemetry::end_epoch`]) so
//!   long simulations can emit time-series;
//! * JSON and CSV exporters and a human-readable summary table
//!   ([`Report`]).
//!
//! Instrumentation is opt-out: [`Telemetry::disabled`] hands out
//! handles whose record calls are branch-free no-ops (masked atomics),
//! so the hot paths carry no conditionals either way.
//!
//! ```
//! use plutus_telemetry::{Event, Telemetry};
//!
//! let tel = Telemetry::new();
//! let bytes = tel.counter("traffic.data.read_bytes");
//! bytes.add(4096);
//! tel.event(Event::BmtWalk { depth: 2 });
//! tel.end_epoch("warmup");
//! let report = tel.report();
//! assert_eq!(report.totals.counter("traffic.data.read_bytes"), Some(4096));
//! println!("{}", report.to_json().to_string_pretty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod export;
pub mod expose;
pub mod fsio;
pub mod json;
pub mod metrics;
pub mod rundir;
pub mod slo;
pub mod stream;
pub mod trace;

pub use clock::{Clock, CycleClock, NullClock, WallClock};
pub use events::{Event, EventLog, FieldValue, TimedEvent, DEFAULT_EVENT_CAPACITY, EVENT_KINDS};
pub use export::{EpochSnapshot, Report};
pub use expose::{prometheus_text, MetricsServer};
pub use fsio::atomic_write;
pub use json::Json;
pub use metrics::{
    BucketCount, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot,
};
pub use rundir::{
    clear_run_dir, in_run_dir, report_dir, run_dir, set_run_dir, MANIFEST_FILE, MANIFEST_SCHEMA,
};
pub use slo::{Anomaly, SloPolicy, SloTracker};
pub use stream::{StreamSink, STREAM_NONDETERMINISTIC, STREAM_SCHEMA};
pub use trace::{TraceId, TraceRecord, Tracer, DEFAULT_TRACE_CAPACITY};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Inner {
    enabled: bool,
    clock: Arc<dyn Clock>,
    registry: MetricsRegistry,
    events: EventLog,
    tracer: Tracer,
    epochs: Mutex<EpochState>,
    /// The live NDJSON sink, when `--stream-out` armed one.
    stream: Mutex<Option<StreamSink>>,
    /// Epoch lines dropped by stream backpressure (sink busy or I/O
    /// error) — the stream never blocks the simulation loop.
    stream_dropped: AtomicU64,
}

#[derive(Debug, Default)]
struct EpochState {
    last: Snapshot,
    closed: Vec<EpochSnapshot>,
}

/// The shared telemetry handle: clones are cheap and point at the same
/// registry, event log, and epoch series.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Telemetry {
    /// An enabled instance with wall-clock timestamps.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// An enabled instance timestamping events with `clock`.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self::build(true, clock, DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled instance with a bounded event log of `capacity`.
    pub fn with_event_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Self {
        Self::build(true, clock, capacity)
    }

    /// A disabled instance: every handle it hands out is a branch-free
    /// no-op, events and epochs are discarded.
    pub fn disabled() -> Self {
        Self::build(false, Arc::new(NullClock), 0)
    }

    fn build(enabled: bool, clock: Arc<dyn Clock>, capacity: usize) -> Self {
        let tracer = if enabled {
            Tracer::new(clock.clone())
        } else {
            Tracer::disabled()
        };
        Self {
            inner: Arc::new(Inner {
                enabled,
                clock,
                registry: MetricsRegistry::new(),
                events: EventLog::with_capacity(capacity),
                tracer,
                epochs: Mutex::new(EpochState::default()),
                stream: Mutex::new(None),
                stream_dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Whether this instance records anything.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The event-timestamp clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// Drives an externally-advanced clock (cycle clocks) to `t`.
    pub fn advance_clock(&self, t: u64) {
        self.inner.clock.advance_to(t);
    }

    /// A handle to counter `name` (no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        if self.inner.enabled {
            self.inner.registry.counter(name)
        } else {
            Counter::disabled()
        }
    }

    /// A handle to gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if self.inner.enabled {
            self.inner.registry.gauge(name)
        } else {
            Gauge::disabled()
        }
    }

    /// A handle to histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if self.inner.enabled {
            self.inner.registry.histogram(name)
        } else {
            Histogram::disabled()
        }
    }

    /// Records `event` at the current clock reading.
    pub fn event(&self, event: Event) {
        self.inner.events.record(self.inner.clock.now(), event);
    }

    /// The causal flight recorder sharing this instance's clock. Clones
    /// are cheap and point at the same ring buffer; the tracer stays
    /// disarmed until [`Telemetry::enable_tracing`].
    pub fn tracer(&self) -> Tracer {
        self.inner.tracer.clone()
    }

    /// Arms the flight recorder: keep one demand access in every
    /// `sample` (1 = all) into a ring of `capacity` records. No-op on a
    /// disabled instance — disabled telemetry never records anything.
    pub fn enable_tracing(&self, sample: u64, capacity: usize) {
        if self.inner.enabled {
            self.inner.tracer.enable(sample, capacity);
        }
    }

    /// A guard profiling the wall-clock time from now until drop into
    /// the histogram `span.<name>.ns`. See also [`span!`].
    pub fn span(&self, name: &str) -> Span {
        if self.inner.enabled {
            Span::running(self.inner.registry.histogram(&format!("span.{name}.ns")))
        } else {
            Span::noop()
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.registry.snapshot(self.inner.clock.now())
    }

    /// Closes the current epoch: snapshots the registry, computes
    /// counter deltas since the previous epoch boundary, and records an
    /// [`Event::EpochEnd`]. Returns the closed epoch (None when
    /// disabled).
    pub fn end_epoch(&self, label: &str) -> Option<EpochSnapshot> {
        if !self.inner.enabled {
            return None;
        }
        let now = self.snapshot();
        let mut state = self.inner.epochs.lock().unwrap();
        let epoch = EpochSnapshot {
            index: state.closed.len(),
            label: label.to_string(),
            start_time: state.last.time,
            end_time: now.time,
            counter_deltas: now.counter_deltas(&state.last),
        };
        state.last = now;
        state.closed.push(epoch.clone());
        drop(state);
        self.event(Event::EpochEnd {
            label: label.to_string(),
        });
        self.stream_emit(&epoch);
        Some(epoch)
    }

    /// Arms the live NDJSON stream: every subsequently closed epoch is
    /// flushed to `out` as one `plutus-stream/v1` line. No-op on a
    /// disabled instance. Replaces any previous sink.
    pub fn stream_to(&self, out: Box<dyn std::io::Write + Send>) -> std::io::Result<()> {
        if !self.inner.enabled {
            return Ok(());
        }
        let sink = StreamSink::new(out, self.inner.clock.unit())?;
        *self.inner.stream.lock().unwrap() = Some(sink);
        Ok(())
    }

    /// Epoch lines dropped by stream backpressure so far.
    pub fn stream_dropped(&self) -> u64 {
        self.inner.stream_dropped.load(Ordering::Relaxed)
    }

    /// Flushes and closes the stream sink, returning the number of
    /// lines it wrote (header included); `None` when no stream was
    /// armed.
    pub fn close_stream(&self) -> Option<u64> {
        let mut sink = self.inner.stream.lock().unwrap().take()?;
        let _ = sink.finish();
        Some(sink.lines())
    }

    /// Non-blocking emission of one closed epoch onto the stream. Lock
    /// contention and write errors count a drop instead of stalling the
    /// caller — this runs inside the simulation loop.
    fn stream_emit(&self, epoch: &EpochSnapshot) {
        let Ok(mut guard) = self.inner.stream.try_lock() else {
            // Sink busy (or poisoned): count the drop, never wait.
            self.inner.stream_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Some(sink) = guard.as_mut() else {
            return;
        };
        let events = self.inner.events.to_vec();
        let dropped = self.inner.stream_dropped.load(Ordering::Relaxed);
        if sink.emit(epoch, &events, dropped).is_err() {
            self.inner.stream_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The closed epochs so far, oldest first.
    pub fn epochs(&self) -> Vec<EpochSnapshot> {
        self.inner.epochs.lock().unwrap().closed.clone()
    }

    /// Builds the immutable export bundle (cumulative totals, epochs,
    /// events).
    pub fn report(&self) -> Report {
        Report {
            time_unit: self.inner.clock.unit(),
            totals: self.snapshot(),
            epochs: self.epochs(),
            events: self.inner.events.to_vec(),
            events_dropped: self.inner.events.dropped(),
            events_high_water: self.inner.events.high_water(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

/// An RAII guard recording its elapsed wall-clock nanoseconds into a
/// histogram on drop. Create via [`Telemetry::span`], the [`span!`]
/// macro, or [`Span::enter`] with a pre-fetched histogram handle.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    /// `None` when telemetry is disabled — the drop-time clock read is
    /// skipped entirely.
    start: Option<std::time::Instant>,
}

impl Span {
    fn running(hist: Histogram) -> Span {
        Span {
            hist,
            start: Some(std::time::Instant::now()),
        }
    }

    fn noop() -> Span {
        Span {
            hist: Histogram::disabled(),
            start: None,
        }
    }

    /// A span recording into a pre-fetched histogram handle — use this
    /// on hot paths to avoid the name lookup of [`Telemetry::span`].
    pub fn enter(tel: &Telemetry, hist: &Histogram) -> Span {
        if tel.enabled() {
            Span::running(hist.clone())
        } else {
            Span::noop()
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a profiling span: `span!(tel, "verify_sector")` returns a
/// guard recording wall-clock ns into `span.verify_sector.ns` when it
/// drops.
#[macro_export]
macro_rules! span {
    ($tel:expr, $name:expr) => {
        $tel.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_roundtrip() {
        let tel = Telemetry::new();
        assert!(tel.enabled());
        tel.counter("c").add(2);
        tel.gauge("g").set(5);
        tel.histogram("h").record(9);
        tel.event(Event::ValueCacheMiss);
        let r = tel.report();
        assert_eq!(r.totals.counter("c"), Some(2));
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.time_unit, "ns");
    }

    #[test]
    fn disabled_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.counter("c").add(2);
        tel.event(Event::ValueCacheMiss);
        assert!(tel.end_epoch("e").is_none());
        let r = tel.report();
        assert!(r.totals.counters.is_empty());
        assert!(r.events.is_empty());
        assert!(r.epochs.is_empty());
    }

    #[test]
    fn epochs_chain_and_sum_to_totals() {
        let tel = Telemetry::new();
        let c = tel.counter("x");
        c.add(3);
        let e0 = tel.end_epoch("first").unwrap();
        c.add(4);
        let e1 = tel.end_epoch("second").unwrap();
        assert_eq!(e0.delta("x"), 3);
        assert_eq!(e1.delta("x"), 4);
        assert_eq!(e1.index, 1);
        let total: u64 = tel.epochs().iter().map(|e| e.delta("x")).sum();
        assert_eq!(total, tel.snapshot().counter("x").unwrap());
    }

    #[test]
    fn spans_record_durations() {
        let tel = Telemetry::new();
        {
            let _guard = span!(tel, "verify_sector");
            std::hint::black_box(0u64);
        }
        let hist = tel.histogram("span.verify_sector.ns");
        assert_eq!(hist.count(), 1);
        // Disabled spans record nothing.
        let off = Telemetry::disabled();
        drop(off.span("verify_sector"));
        assert_eq!(off.report().totals.histograms.len(), 0);
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::new();
        let other = tel.clone();
        other.counter("shared").inc();
        assert_eq!(tel.snapshot().counter("shared"), Some(1));
    }

    #[test]
    fn tracing_arms_only_on_enabled_instances() {
        let off = Telemetry::disabled();
        off.enable_tracing(1, 64);
        assert!(off.tracer().begin("fill", 0).is_none());

        let tel = Telemetry::new();
        let tracer = tel.tracer();
        // Disarmed until enable_tracing.
        assert!(tracer.begin("fill", 0).is_none());
        tel.enable_tracing(1, 64);
        assert!(!tracer.begin("fill", 0).is_none());
        assert_eq!(tel.tracer().len(), 1);
    }

    #[test]
    fn stream_emits_one_line_per_epoch_and_closes() {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let clock = Arc::new(CycleClock::new());
        let tel = Telemetry::with_clock(clock.clone());
        let buf = Arc::new(Mutex::new(Vec::new()));
        tel.stream_to(Box::new(Shared(buf.clone()))).unwrap();
        let c = tel.counter("traffic.data.read_bytes");
        c.add(64);
        clock.advance_to(100);
        tel.end_epoch("cycle-100");
        c.add(32);
        clock.advance_to(200);
        tel.end_epoch("cycle-200");
        assert_eq!(tel.close_stream(), Some(3));
        assert_eq!(tel.stream_dropped(), 0);
        // Closing twice is a no-op; epochs after close do not stream.
        assert_eq!(tel.close_stream(), None);
        tel.end_epoch("cycle-300");
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "stream: {text}");
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some(STREAM_SCHEMA)
        );
        let first = Json::parse(lines[1]).unwrap();
        assert_eq!(first.get("label").and_then(Json::as_str), Some("cycle-100"));
        assert_eq!(
            first
                .get("deltas")
                .and_then(|d| d.get("traffic.data.read_bytes"))
                .and_then(Json::as_u64),
            Some(64)
        );
        // The epoch's own epoch_end event rides the line.
        let events = first.get("events").and_then(Json::as_array).unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("kind").and_then(Json::as_str) == Some("epoch_end")));
        let second = Json::parse(lines[2]).unwrap();
        assert_eq!(
            second
                .get("deltas")
                .and_then(|d| d.get("traffic.data.read_bytes"))
                .and_then(Json::as_u64),
            Some(32)
        );
    }

    #[test]
    fn disabled_stream_to_is_a_noop() {
        let tel = Telemetry::disabled();
        tel.stream_to(Box::new(Vec::new())).unwrap();
        assert_eq!(tel.close_stream(), None);
        assert_eq!(tel.stream_dropped(), 0);
    }

    #[test]
    fn stream_write_errors_count_as_drops() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                // Let the header through, fail afterwards.
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("sink gone"))
            }
        }
        let tel = Telemetry::new();
        // Header flush fails already — stream_to surfaces it.
        assert!(tel.stream_to(Box::new(Failing)).is_err());
    }

    #[test]
    fn report_surfaces_event_high_water() {
        let tel = Telemetry::with_event_capacity(Arc::new(NullClock), 2);
        for _ in 0..3 {
            tel.event(Event::ValueCacheMiss);
        }
        let r = tel.report();
        assert_eq!(r.events_dropped, 1);
        assert_eq!(r.events_high_water, 2);
    }
}
