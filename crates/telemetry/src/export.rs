//! Exporters: JSON, CSV, and a human-readable summary table.
//!
//! All three render a [`Report`] — an immutable bundle of the cumulative
//! registry snapshot, the per-epoch time series, and the event log — so
//! a single run can be exported to multiple sinks consistently.

use crate::events::{FieldValue, TimedEvent};
use crate::json::Json;
use crate::metrics::Snapshot;

/// One closed epoch: the counter deltas accumulated between two
/// consecutive snapshots.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Zero-based epoch index.
    pub index: usize,
    /// Caller-supplied label (e.g. `"bfs/plutus"` or `"cycle-100000"`).
    pub label: String,
    /// Clock reading when the epoch opened.
    pub start_time: u64,
    /// Clock reading when the epoch closed.
    pub end_time: u64,
    /// Non-negative per-counter deltas over the epoch.
    pub counter_deltas: Vec<(String, u64)>,
}

impl EpochSnapshot {
    /// Delta of counter `name` over this epoch (0 if unregistered).
    pub fn delta(&self, name: &str) -> u64 {
        self.counter_deltas
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// An immutable export bundle; build one with
/// [`crate::Telemetry::report`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Unit of every timestamp in the report (`"cycles"`, `"ns"`).
    pub time_unit: &'static str,
    /// Cumulative registry totals at report time.
    pub totals: Snapshot,
    /// Closed epochs, oldest first.
    pub epochs: Vec<EpochSnapshot>,
    /// Retained events, oldest first.
    pub events: Vec<TimedEvent>,
    /// Events dropped because the log was full.
    pub events_dropped: u64,
    /// Peak event-log occupancy over the run (equals the log capacity
    /// iff any event was dropped).
    pub events_high_water: u64,
}

impl From<FieldValue> for Json {
    fn from(v: FieldValue) -> Json {
        match v {
            FieldValue::Num(n) => Json::U64(n),
            FieldValue::Str(s) => Json::Str(s),
            FieldValue::Bool(b) => Json::Bool(b),
        }
    }
}

impl Report {
    /// The full report as a JSON document.
    pub fn to_json(&self) -> Json {
        let counters = self
            .totals
            .counters
            .iter()
            .fold(Json::object(), |o, (n, v)| o.set(n, *v));
        let gauges = self
            .totals
            .gauges
            .iter()
            .fold(Json::object(), |o, (n, v)| o.set(n, *v));
        let histograms = self
            .totals
            .histograms
            .iter()
            .fold(Json::object(), |o, (n, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|b| {
                        Json::object()
                            .set("lo", b.lo)
                            .set("hi", b.hi)
                            .set("count", b.count)
                    })
                    .collect::<Vec<_>>();
                o.set(
                    n,
                    Json::object()
                        .set("count", h.count)
                        .set("sum", h.sum)
                        .set("min", h.min)
                        .set("max", h.max)
                        .set("mean", h.mean())
                        .set("p50", h.quantile(0.5))
                        .set("p95", h.quantile(0.95))
                        .set("buckets", buckets),
                )
            });
        let epochs = self
            .epochs
            .iter()
            .map(|e| {
                let deltas = e
                    .counter_deltas
                    .iter()
                    .filter(|(_, v)| *v != 0)
                    .fold(Json::object(), |o, (n, v)| o.set(n, *v));
                Json::object()
                    .set("index", e.index)
                    .set("label", e.label.as_str())
                    .set("start", e.start_time)
                    .set("end", e.end_time)
                    .set("deltas", deltas)
            })
            .collect::<Vec<_>>();
        let events = self
            .events
            .iter()
            .map(|te| {
                te.event.fields().into_iter().fold(
                    Json::object()
                        .set("t", te.time)
                        .set("kind", te.event.kind()),
                    |o, (k, v)| o.set(k, v),
                )
            })
            .collect::<Vec<_>>();
        Json::object()
            .set(
                "meta",
                Json::object()
                    .set("tool", "plutus-telemetry")
                    .set("time_unit", self.time_unit)
                    .set("snapshot_time", self.totals.time)
                    .set("epochs", self.epochs.len())
                    .set("events_dropped", self.events_dropped)
                    .set("events_high_water", self.events_high_water),
            )
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", histograms)
            .set("epochs", epochs)
            .set("events", events)
    }

    /// The full report as flat CSV with header
    /// `record,epoch,name,field,value`.
    ///
    /// Record kinds: `counter` / `gauge` (cumulative totals),
    /// `histogram` (one row per summary stat), `histogram_bucket`
    /// (field = bucket lower bound), `epoch` (one row per nonzero
    /// counter delta; `epoch` column = index, `name` = epoch label,
    /// `field` = counter name), and `event`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("record,epoch,name,field,value\n");
        let mut row = |record: &str, epoch: &str, name: &str, field: &str, value: String| {
            out.push_str(&csv_field(record));
            out.push(',');
            out.push_str(&csv_field(epoch));
            out.push(',');
            out.push_str(&csv_field(name));
            out.push(',');
            out.push_str(&csv_field(field));
            out.push(',');
            out.push_str(&csv_field(&value));
            out.push('\n');
        };
        for (n, v) in &self.totals.counters {
            row("counter", "", n, "total", v.to_string());
        }
        for (n, v) in &self.totals.gauges {
            row("gauge", "", n, "value", v.to_string());
        }
        for (n, h) in &self.totals.histograms {
            row("histogram", "", n, "count", h.count.to_string());
            row("histogram", "", n, "sum", h.sum.to_string());
            row("histogram", "", n, "min", h.min.to_string());
            row("histogram", "", n, "max", h.max.to_string());
            row("histogram", "", n, "mean", format!("{:.3}", h.mean()));
            for b in &h.buckets {
                row(
                    "histogram_bucket",
                    "",
                    n,
                    &b.lo.to_string(),
                    b.count.to_string(),
                );
            }
        }
        for e in &self.epochs {
            for (n, v) in &e.counter_deltas {
                if *v != 0 {
                    row("epoch", &e.index.to_string(), &e.label, n, v.to_string());
                }
            }
        }
        for te in &self.events {
            let fields = te
                .event
                .fields()
                .into_iter()
                .map(|(k, v)| {
                    let v = match v {
                        FieldValue::Num(n) => n.to_string(),
                        FieldValue::Str(s) => s,
                        FieldValue::Bool(b) => b.to_string(),
                    };
                    format!("{k}={v}")
                })
                .collect::<Vec<_>>()
                .join(";");
            row(
                "event",
                &te.time.to_string(),
                te.event.kind(),
                &fields,
                String::new(),
            );
        }
        out
    }

    /// A fixed-width summary table for terminal output: counters and
    /// histogram digests, epochs elided to a count.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .totals
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.totals.histograms.iter().map(|(n, _)| n.len()))
            .chain(self.totals.gauges.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!(
            "telemetry summary ({} epochs, {} events, peak {}{})\n",
            self.epochs.len(),
            self.events.len(),
            self.events_high_water,
            if self.events_dropped > 0 {
                format!(", {} dropped", self.events_dropped)
            } else {
                String::new()
            }
        ));
        for (n, v) in &self.totals.counters {
            out.push_str(&format!("  {n:width$}  {v:>14}\n"));
        }
        for (n, v) in &self.totals.gauges {
            out.push_str(&format!("  {n:width$}  {v:>14}  (gauge)\n"));
        }
        for (n, h) in &self.totals.histograms {
            out.push_str(&format!(
                "  {n:width$}  n={} mean={:.1} p50={} p95={} max={}\n",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.max
            ));
        }
        out
    }
}

/// Quotes a CSV field when needed (commas, quotes, newlines).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;
    use crate::metrics::MetricsRegistry;

    fn sample_report() -> Report {
        let reg = MetricsRegistry::new();
        reg.counter("traffic.data.read_bytes").add(4096);
        reg.gauge("occupancy").set(12);
        let h = reg.histogram("bmt.walk_depth");
        h.record(1);
        h.record(3);
        let totals = reg.snapshot(100);
        let epoch = EpochSnapshot {
            index: 0,
            label: "bfs/plutus".into(),
            start_time: 0,
            end_time: 100,
            counter_deltas: vec![("traffic.data.read_bytes".into(), 4096)],
        };
        Report {
            time_unit: "cycles",
            totals,
            epochs: vec![epoch],
            events: vec![TimedEvent {
                time: 42,
                event: Event::BmtWalk { depth: 3 },
            }],
            events_dropped: 0,
            events_high_water: 1,
        }
    }

    #[test]
    fn json_has_all_sections() {
        let doc = sample_report().to_json();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("traffic.data.read_bytes"))
                .and_then(Json::as_u64),
            Some(4096)
        );
        assert_eq!(
            doc.get("epochs")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
        let h = doc
            .get("histograms")
            .and_then(|h| h.get("bmt.walk_depth"))
            .unwrap();
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(
            doc.get("events")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
        // Must parse as a self-consistent document string.
        let s = doc.to_string_pretty();
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn csv_is_flat_and_parseable() {
        let csv = sample_report().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("record,epoch,name,field,value"));
        for line in lines {
            assert_eq!(line.split(',').count(), 5, "bad row: {line}");
        }
        assert!(csv.contains("counter,,traffic.data.read_bytes,total,4096"));
        assert!(csv.contains("epoch,0,bfs/plutus,traffic.data.read_bytes,4096"));
        assert!(csv.contains("histogram_bucket,,bmt.walk_depth,1,1"));
    }

    #[test]
    fn csv_quotes_embedded_commas() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn summary_mentions_counters_and_histograms() {
        let s = sample_report().summary_table();
        assert!(s.contains("traffic.data.read_bytes"));
        assert!(s.contains("bmt.walk_depth"));
        assert!(s.contains("1 epochs"));
    }
}
