//! Pluggable time sources for event timestamps and epoch boundaries.
//!
//! The simulator advances a [`CycleClock`] as its event loop drains, so
//! telemetry timestamps are *simulated cycles*; standalone tools use
//! [`WallClock`] and get nanoseconds. Span guards always profile wall
//! time (see [`crate::Telemetry::span`]) — simulated components cannot
//! know their own host-side cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source read by the telemetry layer.
///
/// Implementations must be cheap: `now` sits on event-record paths.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time in this clock's unit (cycles, nanoseconds, ...).
    fn now(&self) -> u64;

    /// Unit label used by exporters (`"cycles"`, `"ns"`).
    fn unit(&self) -> &'static str;

    /// Advance an externally-driven clock to `t`. Self-driven clocks
    /// (wall time) ignore this.
    fn advance_to(&self, _t: u64) {}
}

/// Wall-clock time in nanoseconds since the clock was created.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock anchored at "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn unit(&self) -> &'static str {
        "ns"
    }
}

/// Simulated-cycle time, driven by whoever owns the simulation loop via
/// [`Clock::advance_to`]. Plain store: a new simulation run restarting at
/// cycle 0 simply rewinds the clock.
#[derive(Debug, Default)]
pub struct CycleClock {
    now: AtomicU64,
}

impl CycleClock {
    /// A cycle clock starting at 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for CycleClock {
    fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn unit(&self) -> &'static str {
        "cycles"
    }

    fn advance_to(&self, t: u64) {
        self.now.store(t, Ordering::Relaxed);
    }
}

/// A clock frozen at 0 — used by the disabled telemetry instance.
#[derive(Debug, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now(&self) -> u64 {
        0
    }

    fn unit(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert_eq!(c.unit(), "ns");
    }

    #[test]
    fn cycle_clock_follows_advance() {
        let c = CycleClock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(120);
        assert_eq!(c.now(), 120);
        c.advance_to(7); // a fresh run may rewind
        assert_eq!(c.now(), 7);
        assert_eq!(c.unit(), "cycles");
    }

    #[test]
    fn null_clock_stays_at_zero() {
        let c = NullClock;
        c.advance_to(99);
        assert_eq!(c.now(), 0);
    }
}
