//! The live NDJSON epoch stream (`plutus-stream/v1`).
//!
//! Batch exporters ([`crate::Report`]) only exist after a run ends; the
//! stream sink flushes each closed epoch as one JSON line the moment
//! [`crate::Telemetry::end_epoch`] closes it, so an hour-two IPC
//! collapse in a soak run is visible while the run is still going.
//!
//! Design constraints, in order:
//!
//! 1. **Never block the simulation loop.** Emission uses `try_lock` on
//!    the sink and counts a dropped line on contention or I/O error
//!    instead of waiting — the same drop-counting backpressure the
//!    bounded [`crate::EventLog`] uses.
//! 2. **Deterministic bytes.** A stream produced under `--jobs 4` must
//!    be byte-identical to one produced under `--jobs 1` (the repo's
//!    pinned determinism property). Two rules follow: counters whose
//!    value depends on worker count (work-stealing internals) are
//!    excluded from the per-epoch deltas, and wall-clock timestamps are
//!    omitted entirely — epoch `start`/`end` and event `t` fields only
//!    appear when the telemetry clock counts simulated cycles.
//!
//! Stream grammar: the first line is a header object carrying the
//! schema tag; every following line is one closed epoch with its
//! nonzero counter deltas and the typed events recorded since the
//! previous line.

use std::io::Write;

use crate::events::TimedEvent;
use crate::export::EpochSnapshot;
use crate::json::Json;

/// Schema tag written in the stream header line.
pub const STREAM_SCHEMA: &str = "plutus-stream/v1";

/// Counters excluded from stream deltas because their values depend on
/// how many workers the pool ran with (stealing and batching are
/// scheduling accidents, not simulation facts). Keeping them out is
/// what makes the stream byte-identical across `--jobs N`.
pub const STREAM_NONDETERMINISTIC: &[&str] = &["sched.steals", "sched.injector_batches"];

/// One open stream: a writer plus the cursor of events already emitted.
pub struct StreamSink {
    out: Box<dyn Write + Send>,
    /// Events already emitted on earlier lines (the event log keeps its
    /// head when full, so earlier indexes stay stable).
    events_seen: usize,
    lines: u64,
    /// Whether epoch and event timestamps are deterministic (cycle
    /// clock) and therefore allowed into the stream.
    with_times: bool,
}

impl std::fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSink")
            .field("events_seen", &self.events_seen)
            .field("lines", &self.lines)
            .field("with_times", &self.with_times)
            .finish()
    }
}

impl StreamSink {
    /// Wraps `out` and writes the `plutus-stream/v1` header line.
    /// `time_unit` decides whether timestamps are streamed (only
    /// `"cycles"` is deterministic).
    pub fn new(mut out: Box<dyn Write + Send>, time_unit: &str) -> std::io::Result<StreamSink> {
        let with_times = time_unit == "cycles";
        let header = Json::object()
            .set("schema", STREAM_SCHEMA)
            .set("time_unit", time_unit)
            .set("times", with_times);
        writeln!(out, "{}", header.to_string_compact())?;
        out.flush()?;
        Ok(StreamSink {
            out,
            events_seen: 0,
            lines: 1,
            with_times,
        })
    }

    /// Lines written so far (header included).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Serializes and flushes one epoch line. `events` is the full event
    /// log; the sink's cursor picks out the suffix not yet streamed.
    pub fn emit(
        &mut self,
        epoch: &EpochSnapshot,
        events: &[TimedEvent],
        dropped_so_far: u64,
    ) -> std::io::Result<()> {
        let first = self.events_seen.min(events.len());
        let fresh = &events[first..];
        self.events_seen = events.len();
        let line = stream_line(epoch, fresh, dropped_so_far, self.with_times);
        writeln!(self.out, "{}", line.to_string_compact())?;
        self.out.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Flushes buffered output (called on close).
    pub fn finish(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Renders one epoch line: index, label, optional deterministic
/// timestamps, nonzero deterministic counter deltas, fresh events, and
/// the cumulative count of lines dropped by backpressure.
pub fn stream_line(
    epoch: &EpochSnapshot,
    events: &[TimedEvent],
    dropped_so_far: u64,
    with_times: bool,
) -> Json {
    let deltas = epoch
        .counter_deltas
        .iter()
        .filter(|(n, v)| *v != 0 && !STREAM_NONDETERMINISTIC.contains(&n.as_str()))
        .fold(Json::object(), |o, (n, v)| o.set(n, *v));
    let events: Vec<Json> = events
        .iter()
        .map(|te| {
            let base = if with_times {
                Json::object().set("t", te.time)
            } else {
                Json::object()
            };
            te.event
                .fields()
                .into_iter()
                .fold(base.set("kind", te.event.kind()), |o, (k, v)| o.set(k, v))
        })
        .collect();
    let mut line = Json::object()
        .set("epoch", epoch.index)
        .set("label", epoch.label.as_str());
    if with_times {
        line = line
            .set("start", epoch.start_time)
            .set("end", epoch.end_time);
    }
    line.set("deltas", deltas)
        .set("events", events)
        .set("stream_dropped", dropped_so_far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    fn epoch() -> EpochSnapshot {
        EpochSnapshot {
            index: 2,
            label: "cycle-400".into(),
            start_time: 200,
            end_time: 400,
            counter_deltas: vec![
                ("traffic.data.read_bytes".into(), 4096),
                ("sched.steals".into(), 7),
                ("zeros".into(), 0),
            ],
        }
    }

    #[test]
    fn line_filters_zero_and_nondeterministic_deltas() {
        let line = stream_line(&epoch(), &[], 0, true);
        let deltas = line.get("deltas").unwrap();
        assert_eq!(
            deltas.get("traffic.data.read_bytes").and_then(Json::as_u64),
            Some(4096)
        );
        assert!(deltas.get("sched.steals").is_none());
        assert!(deltas.get("zeros").is_none());
        assert_eq!(line.get("start").and_then(Json::as_u64), Some(200));
    }

    #[test]
    fn wall_clock_lines_omit_times() {
        let ev = TimedEvent {
            time: 123,
            event: Event::ValueCacheMiss,
        };
        let line = stream_line(&epoch(), &[ev], 3, false);
        assert!(line.get("start").is_none());
        assert!(line.get("end").is_none());
        let events = line.get("events").and_then(Json::as_array).unwrap();
        assert!(events[0].get("t").is_none());
        assert_eq!(
            events[0].get("kind").and_then(Json::as_str),
            Some("value_cache_miss")
        );
        assert_eq!(line.get("stream_dropped").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn sink_writes_header_then_epochs_and_tracks_cursor() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(std::sync::Mutex::new(buf));
        struct Tee(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = StreamSink::new(Box::new(Tee(shared.clone())), "cycles").unwrap();
        let evs = vec![
            TimedEvent {
                time: 1,
                event: Event::ValueCacheMiss,
            },
            TimedEvent {
                time: 2,
                event: Event::ValueVerified,
            },
        ];
        sink.emit(&epoch(), &evs[..1], 0).unwrap();
        sink.emit(&epoch(), &evs, 0).unwrap();
        assert_eq!(sink.lines(), 3);
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some(STREAM_SCHEMA)
        );
        // Second line already consumed event 0; third carries only event 1.
        let third = Json::parse(lines[2]).unwrap();
        let evs = third.get("events").and_then(Json::as_array).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(
            evs[0].get("kind").and_then(Json::as_str),
            Some("value_verified")
        );
    }
}
