//! `plutus-trace` — the causal, per-access flight recorder.
//!
//! Aggregate counters answer "how many metadata bytes moved"; this module
//! answers "*which accesses caused them*". Each demand access (fill or
//! writeback) is assigned a [`TraceId`] root; every downstream effect —
//! counter fetch, each BMT level touched, MAC fetch, a value-cache vouch,
//! a compact-counter overflow spill, a retry attempt, a degradation-ladder
//! transition — is recorded as a child record carrying
//! `(cause id, traffic class, bytes, cycle)` into a bounded ring buffer.
//!
//! Sampling is 1-in-N by root id: an unsampled root returns
//! [`TraceId::NONE`] and every child call against it is a single compare
//! against zero — the same opt-out discipline as
//! [`crate::Telemetry::disabled`], so the simulator's hot paths carry no
//! cost when tracing is off.
//!
//! The buffer is bounded like the event log: once full, new records are
//! counted as dropped rather than evicting history, and consumers must
//! check [`Tracer::dropped`] before treating a trace as complete (the
//! bandwidth-attribution conservation property only holds for a trace
//! with zero drops and a sampling period of 1).

use crate::clock::{Clock, NullClock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on retained trace records — generous, because the
/// attribution conservation property requires a lossless trace.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Identity of one traced demand access. `NONE` (the zero id) means the
/// access was not sampled; children of `NONE` are discarded at the cost
/// of one compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(u64);

impl TraceId {
    /// The null id: not sampled, records nothing.
    pub const NONE: TraceId = TraceId(0);

    /// True when this id records nothing.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The raw id value (0 for [`TraceId::NONE`]).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One record in the flight recorder. Roots carry their own `id` and a
/// zero `cause`; children carry a zero `id` and their root's id in
/// `cause`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// This record's own id (roots only; 0 for children).
    pub id: u64,
    /// The root id this record is attributed to (0 for roots).
    pub cause: u64,
    /// Record kind: `"fill"` / `"writeback"` for roots, `"traffic"` for
    /// DRAM transfers, and marker kinds (`"value_vouch"`, `"mac_skip"`,
    /// `"compact_fallback"`, `"compact_spill"`, `"retry"`,
    /// `"violation"`, `"degrade"`) for causal annotations.
    pub kind: &'static str,
    /// Traffic class label (matches `TrafficClass::label`; empty for
    /// non-traffic records).
    pub class: &'static str,
    /// Bytes moved (0 for non-traffic records).
    pub bytes: u64,
    /// True when the transfer was a DRAM write.
    pub write: bool,
    /// Integrity-tree level of the transfer (0 = leaf / not a tree node).
    pub level: u32,
    /// Clock reading when the record was made (simulated cycles under
    /// the simulator's `CycleClock`).
    pub cycle: u64,
    /// Raw sector address for roots and addressed markers (0 otherwise).
    pub addr: u64,
    /// Kind-specific payload: retry attempt number, violation latency,
    /// degradation step code. 0 when unused.
    pub info: u64,
}

#[derive(Debug, Default)]
struct TraceBuf {
    records: VecDeque<TraceRecord>,
}

#[derive(Debug)]
struct TracerInner {
    enabled: AtomicBool,
    /// Keep one root in every `sample` ids (1 = keep all).
    sample: AtomicU64,
    capacity: AtomicUsize,
    next_id: AtomicU64,
    dropped: AtomicU64,
    clock: Arc<dyn Clock>,
    buf: Mutex<TraceBuf>,
}

/// The shared flight-recorder handle: clones are cheap and point at the
/// same ring buffer. Constructed disabled; [`Tracer::enable`] arms it
/// (usually via `Telemetry::enable_tracing`).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A disarmed tracer stamping records with `clock` once enabled.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(false),
                sample: AtomicU64::new(1),
                capacity: AtomicUsize::new(DEFAULT_TRACE_CAPACITY),
                next_id: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                clock,
                buf: Mutex::new(TraceBuf::default()),
            }),
        }
    }

    /// A tracer that can never record (the default for engines before
    /// `attach_telemetry` hands them a live handle).
    pub fn disabled() -> Self {
        Self::new(Arc::new(NullClock))
    }

    /// Arms the recorder: keep one root in every `sample` ids (0 is
    /// treated as 1) into a ring buffer of `capacity` records.
    pub fn enable(&self, sample: u64, capacity: usize) {
        self.inner.sample.store(sample.max(1), Ordering::Relaxed);
        self.inner.capacity.store(capacity, Ordering::Relaxed);
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Whether the recorder is armed.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Opens a new root (a demand access): returns its id, or
    /// [`TraceId::NONE`] when tracing is off or this id fell outside the
    /// 1-in-N sample. `kind` is `"fill"` or `"writeback"`.
    pub fn begin(&self, kind: &'static str, addr: u64) -> TraceId {
        if !self.enabled() {
            return TraceId::NONE;
        }
        let seq = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let sample = self.inner.sample.load(Ordering::Relaxed);
        if !(seq - 1).is_multiple_of(sample) {
            return TraceId::NONE;
        }
        self.push(TraceRecord {
            id: seq,
            cause: 0,
            kind,
            class: "",
            bytes: 0,
            write: false,
            level: 0,
            cycle: self.inner.clock.now(),
            addr,
            info: 0,
        });
        TraceId(seq)
    }

    /// Records one DRAM transfer caused by `cause`. A `NONE` cause is a
    /// single compare and returns immediately.
    pub fn traffic(
        &self,
        cause: TraceId,
        class: &'static str,
        bytes: u64,
        write: bool,
        level: u32,
    ) {
        if cause.is_none() {
            return;
        }
        self.push(TraceRecord {
            id: 0,
            cause: cause.0,
            kind: "traffic",
            class,
            bytes,
            write,
            level,
            cycle: self.inner.clock.now(),
            addr: 0,
            info: 0,
        });
    }

    /// Records a non-traffic causal marker (`"value_vouch"`,
    /// `"mac_skip"`, `"compact_fallback"`, `"compact_spill"`, `"retry"`,
    /// `"violation"`, `"degrade"`) caused by `cause`. `info` carries a
    /// kind-specific payload (retry attempt, violation latency,
    /// degradation code).
    pub fn mark(&self, cause: TraceId, kind: &'static str, addr: u64, info: u64) {
        if cause.is_none() {
            return;
        }
        self.push(TraceRecord {
            id: 0,
            cause: cause.0,
            kind,
            class: "",
            bytes: 0,
            write: false,
            level: 0,
            cycle: self.inner.clock.now(),
            addr,
            info,
        });
    }

    fn push(&self, record: TraceRecord) {
        let capacity = self.inner.capacity.load(Ordering::Relaxed);
        let mut buf = self.inner.buf.lock().unwrap();
        if buf.records.len() >= capacity {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.records.push_back(record);
        }
    }

    /// Records dropped because the ring buffer was full. A nonzero count
    /// voids the attribution conservation property.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().unwrap().records.len()
    }

    /// Whether the recorder holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner
            .buf
            .lock()
            .unwrap()
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns all retained records, oldest first.
    pub fn drain(&self) -> Vec<TraceRecord> {
        self.inner.buf.lock().unwrap().records.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::CycleClock;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::disabled();
        let root = t.begin("fill", 0x40);
        assert!(root.is_none());
        t.traffic(root, "data", 32, false, 0);
        t.mark(root, "retry", 0x40, 1);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn roots_and_children_roundtrip() {
        let clock = Arc::new(CycleClock::new());
        let t = Tracer::new(clock.clone());
        t.enable(1, 16);
        let root = t.begin("fill", 0x40);
        assert_eq!(root.raw(), 1);
        clock.advance_to(7);
        t.traffic(root, "counter", 32, false, 0);
        t.traffic(root, "bmt", 32, false, 2);
        t.mark(root, "value_vouch", 0x40, 0);
        let recs = t.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].kind, "fill");
        assert_eq!(recs[0].id, 1);
        assert_eq!(recs[0].cycle, 0);
        assert_eq!(recs[1].cause, 1);
        assert_eq!(recs[1].cycle, 7);
        assert_eq!(recs[2].level, 2);
        assert_eq!(recs[3].kind, "value_vouch");
        assert_eq!(recs[3].bytes, 0);
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let t = Tracer::new(Arc::new(CycleClock::new()));
        t.enable(4, 64);
        let sampled: Vec<bool> = (0..8).map(|_| !t.begin("fill", 0).is_none()).collect();
        assert_eq!(
            sampled,
            [true, false, false, false, true, false, false, false]
        );
        // Children of unsampled roots vanish.
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let t = Tracer::new(Arc::new(CycleClock::new()));
        t.enable(1, 2);
        let root = t.begin("fill", 0);
        t.traffic(root, "data", 32, false, 0);
        t.traffic(root, "mac", 32, false, 0); // over capacity
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn drain_empties_the_buffer() {
        let t = Tracer::new(Arc::new(CycleClock::new()));
        t.enable(1, 8);
        let root = t.begin("writeback", 0x80);
        t.traffic(root, "data", 32, true, 0);
        assert_eq!(t.drain().len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::new(Arc::new(CycleClock::new()));
        t.enable(1, 8);
        let other = t.clone();
        let root = other.begin("fill", 0);
        t.traffic(root, "data", 32, false, 0);
        assert_eq!(t.len(), 2);
        assert_eq!(other.len(), 2);
    }
}
