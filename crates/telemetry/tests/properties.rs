//! Property-style tests for the telemetry invariants the rest of the
//! workspace leans on: snapshot deltas are non-negative and sum to the
//! cumulative totals, histograms conserve mass, and the disabled
//! registry is effectively free.
//!
//! Deterministic seeded loops stand in for a property-testing framework
//! (the build environment resolves no external crates).

use plutus_telemetry::{Event, Snapshot, Telemetry};

/// SplitMix64 — deterministic pseudo-random stream for case generation.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[test]
fn epoch_deltas_are_nonnegative_and_sum_to_totals() {
    for seed in 0..20u64 {
        let mut rng = Mix(seed);
        let tel = Telemetry::new();
        let names = ["a", "b", "c", "d"];
        let handles: Vec<_> = names.iter().map(|n| tel.counter(n)).collect();
        let epochs = 2 + (rng.next() % 6) as usize;
        for _ in 0..epochs {
            for h in &handles {
                h.add(rng.next() % 1000);
            }
            tel.end_epoch("step");
        }
        // A tail of updates after the last epoch boundary.
        handles[0].add(rng.next() % 100);

        let closed = tel.epochs();
        assert_eq!(closed.len(), epochs);
        let totals = tel.snapshot();
        for name in names {
            let mut summed = 0u64;
            for (i, e) in closed.iter().enumerate() {
                assert_eq!(e.index, i);
                summed += e.delta(name); // deltas are u64: non-negative by type
            }
            let total = totals.counter(name).unwrap();
            // Epoch deltas never over-count the cumulative total, and
            // counters untouched after the last boundary sum exactly.
            assert!(
                summed <= total,
                "{name}: epoch deltas {summed} exceed total {total}"
            );
            if name != "a" {
                assert_eq!(summed, total, "{name}: epoch deltas must sum to the total");
            }
        }
        // Epochs chain: each starts where the previous ended.
        for w in closed.windows(2) {
            assert_eq!(w[1].start_time, w[0].end_time);
        }
    }
}

#[test]
fn histograms_conserve_count_and_sum() {
    for seed in 0..20u64 {
        let mut rng = Mix(0x5eed ^ seed);
        let tel = Telemetry::new();
        let h = tel.histogram("lat");
        let n = 1 + (rng.next() % 500) as usize;
        let mut expect_sum = 0u64;
        let mut expect_min = u64::MAX;
        let mut expect_max = 0u64;
        for _ in 0..n {
            // Spread across many orders of magnitude.
            let v = rng.next() >> (rng.next() % 60);
            h.record(v);
            expect_sum = expect_sum.wrapping_add(v);
            expect_min = expect_min.min(v);
            expect_max = expect_max.max(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, n as u64);
        assert_eq!(s.sum, expect_sum);
        assert_eq!(s.min, expect_min);
        assert_eq!(s.max, expect_max);
        // Bucket mass equals total count, and every bucket is sane.
        let mass: u64 = s.buckets.iter().map(|b| b.count).sum();
        assert_eq!(mass, s.count);
        for b in &s.buckets {
            assert!(b.lo <= b.hi);
        }
        for w in s.buckets.windows(2) {
            assert!(w[0].hi < w[1].lo, "buckets must be disjoint and ascending");
        }
    }
}

#[test]
fn report_export_roundtrips_counter_values() {
    let tel = Telemetry::new();
    for (i, name) in ["x.bytes", "y.bytes", "z, with comma"].iter().enumerate() {
        tel.counter(name).add((i as u64 + 1) * 7);
    }
    tel.event(Event::CliError {
        message: "bad, \"flag\"".into(),
    });
    tel.end_epoch("only");
    let report = tel.report();

    let json = report.to_json().to_string_pretty();
    assert!(json.contains("\"x.bytes\": 7"));
    assert!(json.contains("\\\"flag\\\""));

    let csv = report.to_csv();
    let header = csv.lines().next().unwrap();
    assert_eq!(header, "record,epoch,name,field,value");
    // Quoted fields keep rows parseable: a naive split sees extra
    // commas only inside quotes.
    assert!(csv
        .lines()
        .any(|l| l.starts_with("counter,,\"z, with comma\"")));
}

#[test]
fn snapshot_deltas_of_identical_snapshots_are_zero() {
    let tel = Telemetry::new();
    tel.counter("c").add(5);
    let s1 = tel.snapshot();
    let s2 = tel.snapshot();
    assert!(s2.counter_deltas(&s1).iter().all(|(_, d)| *d == 0));
    assert!(Snapshot::default()
        .counter_deltas(&Snapshot::default())
        .is_empty());
}

/// Acceptance criterion: disabled-handle record calls are branch-free
/// no-ops with near-zero cost. Only meaningful with optimizations on,
/// so it is gated to release builds (`cargo test --release`).
#[cfg(not(debug_assertions))]
#[test]
fn disabled_recording_is_near_zero_cost() {
    use std::time::Instant;

    let off = Telemetry::disabled();
    let counter = off.counter("hot");
    let hist = off.histogram("lat");

    const ITERS: u64 = 20_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        counter.add(std::hint::black_box(i));
        hist.record(std::hint::black_box(i));
    }
    let elapsed = start.elapsed();
    let ns_per_op = elapsed.as_nanos() as f64 / (2 * ITERS) as f64;

    assert_eq!(counter.get(), 0, "disabled counter must stay zero");
    assert_eq!(hist.count(), 0, "disabled histogram must stay empty");
    // Masked atomics on uncontended cache lines run in a few ns; 50 ns
    // leaves two orders of magnitude of headroom over the locked-map
    // designs this layer exists to avoid, while staying robust on slow
    // or shared CI hardware.
    assert!(
        ns_per_op < 50.0,
        "disabled record calls cost {ns_per_op:.1} ns/op — not near-zero"
    );
}
