//! An in-workspace stand-in for the tiny slice of the `rand` crate API
//! this repository uses (`StdRng`, `seed_from_u64`, `gen`, `gen_range`,
//! `gen_bool`, `fill`). The build environment resolves no external
//! crates, so workload generators and deterministic tests link against
//! this shim instead.
//!
//! The generator is SplitMix64: 64 bits of state, full-period,
//! statistically solid for simulation workloads and seeded tests. It is
//! **not** the crates.io `rand` — same seeds produce different streams,
//! and nothing here is cryptographic (the crypto crate has its own
//! primitives).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Conversion from random bits — the target types of [`Rng::gen`].
pub trait FromRng {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: FromRng + Copy + Default, const N: usize> FromRng for [T; N] {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::from_rng(rng);
        }
        out
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy {
    /// Widens to `i128` (every primitive integer fits).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; the caller guarantees the value is in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (matching `rand`'s contract).
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_span<T: SampleUniform, R: RngCore + ?Sized>(lo: i128, span: i128, rng: &mut R) -> T {
    assert!(span > 0, "cannot sample from an empty range");
    // Modulo bias is ≤ span/2^64 — irrelevant for simulation workloads.
    T::from_i128(lo + (rng.next_u64() as i128) % span)
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        sample_span(lo, hi - lo, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        sample_span(lo, hi - lo + 1, rng)
    }
}

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let x: usize = rng.gen_range(0..1);
            assert_eq!(x, 0);
            let y: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_randomizes_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
        let mut other = [0u8; 13];
        StdRng::seed_from_u64(5).fill(&mut other[..]);
        assert_eq!(buf, other);
    }

    #[test]
    fn array_gen_works() {
        let mut rng = StdRng::seed_from_u64(6);
        let a: [u8; 16] = rng.gen();
        let b: [u8; 16] = rng.gen();
        assert_ne!(a, b);
        let distinct: std::collections::HashSet<u32> =
            (0..1000).map(|_| rng.gen::<u32>()).collect();
        assert!(distinct.len() > 990, "wide values should rarely repeat");
    }
}
