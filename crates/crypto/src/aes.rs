//! AES-128 block cipher (FIPS-197).
//!
//! A dependency-free software implementation using the classic 32-bit
//! T-table formulation for the round function (the simulator decrypts
//! every fill for real, so block throughput directly bounds simulation
//! speed). The byte-oriented reference path is kept for cross-checking in
//! tests. Constant-time execution is *not* a goal here — the simulator
//! itself is the threat-model boundary, not this process.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box.
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants for the AES-128 key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply a GF(2^8) element by `x` (i.e., `{02}`) modulo the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// Multiply two GF(2^8) elements modulo the AES polynomial.
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Round-function lookup tables: `TE[i][x]` / `TD[i][x]` are the classic
/// Rijndael T-tables, with `TE[i] = TE[0].rotate_right(8 i)`.
struct Tables {
    te: [[u32; 256]; 4],
    td: [[u32; 256]; 4],
}

fn tables() -> &'static Tables {
    static TABLES: std::sync::OnceLock<Tables> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut te = [[0u32; 256]; 4];
        let mut td = [[0u32; 256]; 4];
        for x in 0..256 {
            let s = SBOX[x];
            let e = u32::from_be_bytes([gmul(s, 2), s, s, gmul(s, 3)]);
            let si = INV_SBOX[x];
            let d = u32::from_be_bytes([gmul(si, 14), gmul(si, 9), gmul(si, 13), gmul(si, 11)]);
            for i in 0..4 {
                te[i][x] = e.rotate_right(8 * i as u32);
                td[i][x] = d.rotate_right(8 * i as u32);
            }
        }
        Tables { te, td }
    })
}

/// `InvMixColumns` of one big-endian column word (key-schedule transform
/// for the equivalent inverse cipher).
fn inv_mix_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    let m = |r: [u8; 4]| gmul(b[0], r[0]) ^ gmul(b[1], r[1]) ^ gmul(b[2], r[2]) ^ gmul(b[3], r[3]);
    u32::from_be_bytes([
        m([14, 11, 13, 9]),
        m([9, 14, 11, 13]),
        m([13, 9, 14, 11]),
        m([11, 13, 9, 14]),
    ])
}

/// An expanded AES-128 key, ready for block encryption and decryption.
///
/// # Example
///
/// ```
/// use plutus_crypto::Aes128;
///
/// let aes = Aes128::new([0u8; 16]);
/// let mut block = [0u8; 16];
/// aes.encrypt_block(&mut block);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each (reference byte layout).
    round_keys: [[u8; 16]; 11],
    /// Encryption round keys as big-endian column words.
    ek: [[u32; 4]; 11],
    /// Equivalent-inverse-cipher round keys.
    dk: [[u32; 4]; 11],
    /// `dk` in byte layout — the schedule `aesdec` consumes directly.
    dec_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug output.
        f.debug_struct("Aes128")
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl Aes128 {
    /// Expands `key` into the full AES-128 key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        let mut ek = [[0u32; 4]; 11];
        for (r, rk) in round_keys.iter().enumerate() {
            for c in 0..4 {
                ek[r][c] = u32::from_be_bytes(rk[4 * c..4 * c + 4].try_into().unwrap());
            }
        }
        // Equivalent inverse cipher: reverse the schedule and apply
        // InvMixColumns to the inner round keys.
        let mut dk = [[0u32; 4]; 11];
        dk[0] = ek[10];
        dk[10] = ek[0];
        for r in 1..10 {
            for c in 0..4 {
                dk[r][c] = inv_mix_word(ek[10 - r][c]);
            }
        }
        let mut dec_keys = [[0u8; 16]; 11];
        for (bytes, words) in dec_keys.iter_mut().zip(dk.iter()) {
            for c in 0..4 {
                bytes[4 * c..4 * c + 4].copy_from_slice(&words[c].to_be_bytes());
            }
        }
        Self {
            round_keys,
            ek,
            dk,
            dec_keys,
        }
    }

    /// Encryption round keys in byte layout (the AES-NI kernels' input).
    #[cfg(all(target_arch = "x86_64", test))]
    pub(crate) fn enc_round_keys(&self) -> &[[u8; 16]; 11] {
        &self.round_keys
    }

    /// Equivalent-inverse-cipher round keys in byte layout.
    #[cfg(all(target_arch = "x86_64", test))]
    pub(crate) fn dec_round_keys(&self) -> &[[u8; 16]; 11] {
        &self.dec_keys
    }

    /// Encrypts one 16-byte block in place, dispatching to the active
    /// [backend](crate::backend).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if crate::aesni::try_encrypt_blocks(&self.round_keys, std::slice::from_mut(block)) {
            return;
        }
        self.encrypt_block_scalar(block);
    }

    /// Decrypts one 16-byte block in place, dispatching to the active
    /// [backend](crate::backend).
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if crate::aesni::try_decrypt_blocks(&self.dec_keys, std::slice::from_mut(block)) {
            return;
        }
        self.decrypt_block_scalar(block);
    }

    /// Encrypts a batch of independent 16-byte blocks in place.
    ///
    /// This is the throughput entry point: the AES-NI backend pipelines up
    /// to 8 blocks per kernel iteration, so callers with several blocks in
    /// hand (a sector's worth of XTS blocks, a fill's MAC probes, a
    /// rotation step's sectors) should hand them over in one call rather
    /// than block-at-a-time.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        #[cfg(target_arch = "x86_64")]
        if crate::aesni::try_encrypt_blocks(&self.round_keys, blocks) {
            return;
        }
        for block in blocks.iter_mut() {
            self.encrypt_block_scalar(block);
        }
    }

    /// Decrypts a batch of independent 16-byte blocks in place (see
    /// [`Aes128::encrypt_blocks`]).
    pub fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        #[cfg(target_arch = "x86_64")]
        if crate::aesni::try_decrypt_blocks(&self.dec_keys, blocks) {
            return;
        }
        for block in blocks.iter_mut() {
            self.decrypt_block_scalar(block);
        }
    }

    /// Encrypts one 16-byte block in place on the scalar T-table path,
    /// regardless of the active backend (the equivalence suites' pinned
    /// reference).
    #[doc(hidden)]
    pub fn encrypt_block_scalar(&self, block: &mut [u8; 16]) {
        let t = tables();
        let ek = &self.ek;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ ek[0][0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ ek[0][1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ ek[0][2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ ek[0][3];
        for rk in &ek[1..10] {
            let t0 = t.te[0][(s0 >> 24) as usize]
                ^ t.te[1][(s1 >> 16) as usize & 0xff]
                ^ t.te[2][(s2 >> 8) as usize & 0xff]
                ^ t.te[3][s3 as usize & 0xff]
                ^ rk[0];
            let t1 = t.te[0][(s1 >> 24) as usize]
                ^ t.te[1][(s2 >> 16) as usize & 0xff]
                ^ t.te[2][(s3 >> 8) as usize & 0xff]
                ^ t.te[3][s0 as usize & 0xff]
                ^ rk[1];
            let t2 = t.te[0][(s2 >> 24) as usize]
                ^ t.te[1][(s3 >> 16) as usize & 0xff]
                ^ t.te[2][(s0 >> 8) as usize & 0xff]
                ^ t.te[3][s1 as usize & 0xff]
                ^ rk[2];
            let t3 = t.te[0][(s3 >> 24) as usize]
                ^ t.te[1][(s0 >> 16) as usize & 0xff]
                ^ t.te[2][(s1 >> 8) as usize & 0xff]
                ^ t.te[3][s2 as usize & 0xff]
                ^ rk[3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        let last = |a: u32, b: u32, c: u32, d: u32, rk: u32| {
            (u32::from(SBOX[(a >> 24) as usize]) << 24
                | u32::from(SBOX[(b >> 16) as usize & 0xff]) << 16
                | u32::from(SBOX[(c >> 8) as usize & 0xff]) << 8
                | u32::from(SBOX[d as usize & 0xff]))
                ^ rk
        };
        let o0 = last(s0, s1, s2, s3, ek[10][0]);
        let o1 = last(s1, s2, s3, s0, ek[10][1]);
        let o2 = last(s2, s3, s0, s1, ek[10][2]);
        let o3 = last(s3, s0, s1, s2, ek[10][3]);
        block[0..4].copy_from_slice(&o0.to_be_bytes());
        block[4..8].copy_from_slice(&o1.to_be_bytes());
        block[8..12].copy_from_slice(&o2.to_be_bytes());
        block[12..16].copy_from_slice(&o3.to_be_bytes());
    }

    /// Decrypts one 16-byte block in place on the scalar T-table path,
    /// regardless of the active backend.
    #[doc(hidden)]
    pub fn decrypt_block_scalar(&self, block: &mut [u8; 16]) {
        let t = tables();
        let dk = &self.dk;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ dk[0][0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ dk[0][1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ dk[0][2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ dk[0][3];
        for rk in &dk[1..10] {
            let t0 = t.td[0][(s0 >> 24) as usize]
                ^ t.td[1][(s3 >> 16) as usize & 0xff]
                ^ t.td[2][(s2 >> 8) as usize & 0xff]
                ^ t.td[3][s1 as usize & 0xff]
                ^ rk[0];
            let t1 = t.td[0][(s1 >> 24) as usize]
                ^ t.td[1][(s0 >> 16) as usize & 0xff]
                ^ t.td[2][(s3 >> 8) as usize & 0xff]
                ^ t.td[3][s2 as usize & 0xff]
                ^ rk[1];
            let t2 = t.td[0][(s2 >> 24) as usize]
                ^ t.td[1][(s1 >> 16) as usize & 0xff]
                ^ t.td[2][(s0 >> 8) as usize & 0xff]
                ^ t.td[3][s3 as usize & 0xff]
                ^ rk[2];
            let t3 = t.td[0][(s3 >> 24) as usize]
                ^ t.td[1][(s2 >> 16) as usize & 0xff]
                ^ t.td[2][(s1 >> 8) as usize & 0xff]
                ^ t.td[3][s0 as usize & 0xff]
                ^ rk[3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        let last = |a: u32, b: u32, c: u32, d: u32, rk: u32| {
            (u32::from(INV_SBOX[(a >> 24) as usize]) << 24
                | u32::from(INV_SBOX[(b >> 16) as usize & 0xff]) << 16
                | u32::from(INV_SBOX[(c >> 8) as usize & 0xff]) << 8
                | u32::from(INV_SBOX[d as usize & 0xff]))
                ^ rk
        };
        let o0 = last(s0, s3, s2, s1, dk[10][0]);
        let o1 = last(s1, s0, s3, s2, dk[10][1]);
        let o2 = last(s2, s1, s0, s3, dk[10][2]);
        let o3 = last(s3, s2, s1, s0, dk[10][3]);
        block[0..4].copy_from_slice(&o0.to_be_bytes());
        block[4..8].copy_from_slice(&o1.to_be_bytes());
        block[8..12].copy_from_slice(&o2.to_be_bytes());
        block[12..16].copy_from_slice(&o3.to_be_bytes());
    }

    /// Reference byte-oriented encryption (used by tests to cross-check
    /// the T-table path).
    #[doc(hidden)]
    pub fn encrypt_block_reference(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Reference byte-oriented decryption (used by tests to cross-check
    /// the T-table path).
    #[doc(hidden)]
    pub fn decrypt_block_reference(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[10]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..10).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts a copy of `block` and returns the ciphertext.
    pub fn encrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let mut out = block;
        self.encrypt_block(&mut out);
        out
    }

    /// Decrypts a copy of `block` and returns the plaintext.
    pub fn decrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let mut out = block;
        self.decrypt_block(&mut out);
        out
    }

    /// Scalar-path copying variant of [`Aes128::encrypt`].
    #[doc(hidden)]
    pub fn encrypt_scalar(&self, block: [u8; 16]) -> [u8; 16] {
        let mut out = block;
        self.encrypt_block_scalar(&mut out);
        out
    }

    /// Scalar-path copying variant of [`Aes128::decrypt`].
    #[doc(hidden)]
    pub fn decrypt_scalar(&self, block: [u8; 16]) -> [u8; 16] {
        let mut out = block;
        self.decrypt_block_scalar(&mut out);
        out
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// State layout: byte `state[4*c + r]` is row `r`, column `c` (FIPS-197
/// column-major order, matching the round-key layout produced in `new`).
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().unwrap();
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().unwrap();
        state[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    /// FIPS-197 Appendix C.1 example vector.
    #[test]
    fn fips197_appendix_c1() {
        let aes = Aes128::new(hex16("000102030405060708090a0b0c0d0e0f"));
        let pt = hex16("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt(pt);
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt(ct), pt);
    }

    /// FIPS-197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let ct = aes.encrypt(pt);
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
        assert_eq!(aes.decrypt(ct), pt);
    }

    #[test]
    fn roundtrip_many_keys_and_blocks() {
        // Deterministic pseudo-random coverage without pulling in rand here.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..64 {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            pt[..8].copy_from_slice(&next().to_le_bytes());
            pt[8..].copy_from_slice(&next().to_le_bytes());
            let aes = Aes128::new(key);
            assert_eq!(aes.decrypt(aes.encrypt(pt)), pt);
        }
    }

    #[test]
    fn single_bit_flip_diffuses() {
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = [0u8; 16];
        let ct = aes.encrypt(pt);
        let mut ct2 = ct;
        ct2[0] ^= 1;
        let pt2 = aes.decrypt(ct2);
        // Avalanche: roughly half the 128 bits should differ; demand > 32.
        let differing: u32 = pt
            .iter()
            .zip(pt2.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(
            differing > 32,
            "only {differing} bits differ after bit-flip"
        );
    }

    /// The T-table fast path must agree with the byte-oriented reference
    /// implementation on random keys and blocks.
    #[test]
    fn ttable_matches_reference() {
        let mut x: u64 = 0xdead_beef_cafe_f00d;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..128 {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            pt[..8].copy_from_slice(&next().to_le_bytes());
            pt[8..].copy_from_slice(&next().to_le_bytes());
            let aes = Aes128::new(key);
            let mut fast = pt;
            aes.encrypt_block_scalar(&mut fast);
            let mut slow = pt;
            aes.encrypt_block_reference(&mut slow);
            assert_eq!(fast, slow, "encrypt mismatch");
            aes.decrypt_block_scalar(&mut fast);
            aes.decrypt_block_reference(&mut slow);
            assert_eq!(fast, slow, "decrypt mismatch");
            assert_eq!(fast, pt);
        }
    }

    /// The dispatching batch entry points must agree byte-for-byte with the
    /// scalar reference path, whatever backend is active on this host.
    #[test]
    fn batch_dispatch_matches_scalar() {
        let mut x: u64 = 0x0bad_cafe_1234_5678;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for trial in 0..16 {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            let aes = Aes128::new(key);
            // Lengths straddle the 8-lane kernel width, including 0.
            let n = (trial * 3) % 21;
            let mut blocks = Vec::with_capacity(n);
            for _ in 0..n {
                let mut b = [0u8; 16];
                b[..8].copy_from_slice(&next().to_le_bytes());
                b[8..].copy_from_slice(&next().to_le_bytes());
                blocks.push(b);
            }
            let plain = blocks.clone();
            aes.encrypt_blocks(&mut blocks);
            for (ct, pt) in blocks.iter().zip(plain.iter()) {
                assert_eq!(*ct, aes.encrypt_scalar(*pt), "batch encrypt mismatch");
            }
            aes.decrypt_blocks(&mut blocks);
            assert_eq!(blocks, plain, "batch decrypt mismatch");
            if let Some(first) = plain.first() {
                let mut single = *first;
                aes.encrypt_block(&mut single);
                assert_eq!(single, aes.encrypt_scalar(*first));
                aes.decrypt_block(&mut single);
                assert_eq!(single, *first);
            }
        }
    }

    #[test]
    fn gmul_matches_xtime() {
        for b in 0..=255u8 {
            assert_eq!(gmul(b, 2), xtime(b));
            assert_eq!(gmul(b, 1), b);
            assert_eq!(gmul(b, 3), xtime(b) ^ b);
        }
    }

    #[test]
    fn debug_redacts_key() {
        let aes = Aes128::new([7u8; 16]);
        let dbg = format!("{aes:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains('7'));
    }
}
