//! From-scratch cryptographic primitives for the Plutus secure-GPU-memory
//! simulator.
//!
//! The Plutus paper's central security argument — that a tampered AES-XTS
//! ciphertext decrypts to an (effectively) uniformly random plaintext, so a
//! small cache of recently seen values can authenticate data without fetching
//! a MAC — depends on *real* cipher diffusion. This crate therefore
//! implements the primitives for real rather than stubbing them:
//!
//! - [`aes::Aes128`] — the AES-128 block cipher (FIPS-197, test-vector
//!   verified).
//! - [`gf128`] — carry-less GF(2^128) doubling used by XTS and CMAC.
//! - [`xts::Xts`] — AES-XTS sector encryption (IEEE 1619 style, whole-block
//!   sectors, no ciphertext stealing needed at 16 B multiples).
//! - [`ctr::CounterMode`] — counter-mode (CME) pad generation, the scheme
//!   used by the PSSM baseline.
//! - [`mac::Cmac`] — AES-CMAC (RFC 4493) with truncation to the 4 B / 8 B
//!   MACs used by PSSM and Plutus.
//!
//! # Example
//!
//! ```
//! use plutus_crypto::{xts::Xts, Tweak};
//!
//! let xts = Xts::new([0x11; 16], [0x22; 16]);
//! let tweak = Tweak::new(0xdead_beef_0000, 7);
//! let mut sector = *b"GPU sectors are 32 bytes long!!!";
//! let original = sector;
//! xts.encrypt_sector(&mut sector, tweak);
//! assert_ne!(sector, original);
//! xts.decrypt_sector(&mut sector, tweak);
//! assert_eq!(sector, original);
//! ```
//!
//! All types are `Send + Sync` and deterministic; nothing here performs I/O.
//!
//! # Backends
//!
//! Every primitive has two implementations selected at runtime by
//! [`backend`]: the portable scalar path above, and an `x86_64`
//! AES-NI + PCLMULQDQ batch path (the crate-private `aesni` module, the
//! only one permitted to use `unsafe`). Both are byte-identical — the SIMD path is purely a
//! wall-clock optimization, so simulation results never depend on the host
//! CPU. Batch entry points ([`Aes128::encrypt_blocks`],
//! [`CounterMode::pad_stream`], [`Cmac::stateful_tag64_many`],
//! [`Xts::process_sectors`]) pipeline independent blocks through the AES
//! units; prefer them whenever more than one block is in hand.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
#[cfg(target_arch = "x86_64")]
pub(crate) mod aesni;
pub mod backend;
pub mod ctr;
pub mod gf128;
pub mod mac;
pub mod xts;

pub use aes::Aes128;
pub use backend::CryptoBackend;
pub use ctr::CounterMode;
pub use mac::Cmac;
pub use xts::Xts;

/// A 128-bit encryption tweak combining spatial and temporal uniqueness.
///
/// Secure-memory schemes derive per-sector tweaks from the sector's physical
/// address (spatial uniqueness: two sectors holding the same plaintext get
/// different ciphertexts) and its write counter (temporal uniqueness: two
/// writes of the same plaintext to the same sector get different
/// ciphertexts). Both AES-XTS (Plutus) and counter mode (PSSM baseline) use
/// the same tweak structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tweak {
    /// Sector physical address (or any spatially unique identifier).
    pub address: u64,
    /// Write counter value for the sector (major ‖ minor combined).
    pub counter: u64,
}

impl Tweak {
    /// Creates a tweak from an address and a counter value.
    pub fn new(address: u64, counter: u64) -> Self {
        Self { address, counter }
    }

    /// Serializes the tweak into the 16-byte block fed to the tweak cipher.
    ///
    /// Address occupies the low 8 bytes, counter the high 8 bytes, both
    /// little-endian. Any bijective packing works; this one is fixed so that
    /// ciphertexts are stable across runs and platforms.
    pub fn to_block(self) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&self.address.to_le_bytes());
        block[8..].copy_from_slice(&self.counter.to_le_bytes());
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tweak_to_block_is_injective_on_fields() {
        let a = Tweak::new(1, 2).to_block();
        let b = Tweak::new(2, 1).to_block();
        assert_ne!(a, b);
    }

    #[test]
    fn tweak_block_roundtrip_layout() {
        let t = Tweak::new(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        let block = t.to_block();
        assert_eq!(
            u64::from_le_bytes(block[..8].try_into().unwrap()),
            t.address
        );
        assert_eq!(
            u64::from_le_bytes(block[8..].try_into().unwrap()),
            t.counter
        );
    }
}
