//! AES-CMAC (RFC 4493 / NIST SP 800-38B) with truncation.
//!
//! Secure-memory designs store a truncated MAC per protected unit: Intel SGX
//! uses 56-bit MACs, PSSM uses 32-bit per-sector MACs, and Plutus's baseline
//! uses 64-bit per-sector MACs. This module provides the full 128-bit CMAC
//! plus [`Cmac::tag`] truncation, and a *stateful* variant
//! ([`Cmac::stateful_tag`]) that mixes the encryption tweak into the MAC as
//! Bonsai-Merkle-Tree-style replay protection requires.

use crate::gf128::cmac_double;
use crate::{Aes128, Tweak};

/// An AES-CMAC instance with precomputed subkeys.
///
/// # Example
///
/// ```
/// use plutus_crypto::Cmac;
///
/// let cmac = Cmac::new([0x42; 16]);
/// let tag8 = cmac.tag(b"sector data", 8);
/// assert_eq!(tag8.len(), 8);
/// ```
#[derive(Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

impl std::fmt::Debug for Cmac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cmac")
            .field("subkeys", &"<redacted>")
            .finish()
    }
}

impl Cmac {
    /// Creates a CMAC instance, deriving subkeys `K1`, `K2` from `key`.
    pub fn new(key: [u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let mut k1 = cipher.encrypt([0u8; 16]);
        cmac_double(&mut k1);
        let mut k2 = k1;
        cmac_double(&mut k2);
        Self { cipher, k1, k2 }
    }

    /// Computes the full 128-bit CMAC of `message`.
    pub fn mac(&self, message: &[u8]) -> [u8; 16] {
        let mut x = [0u8; 16];
        if message.is_empty() {
            // Single padded block XOR K2.
            let mut block = [0u8; 16];
            block[0] = 0x80;
            for i in 0..16 {
                block[i] ^= self.k2[i] ^ x[i];
            }
            return self.cipher.encrypt(block);
        }
        let full_blocks = (message.len() - 1) / 16;
        for i in 0..full_blocks {
            let mut block: [u8; 16] = message[16 * i..16 * i + 16].try_into().unwrap();
            for j in 0..16 {
                block[j] ^= x[j];
            }
            x = self.cipher.encrypt(block);
        }
        let rest = &message[16 * full_blocks..];
        let mut last = [0u8; 16];
        let key = if rest.len() == 16 {
            last.copy_from_slice(rest);
            &self.k1
        } else {
            last[..rest.len()].copy_from_slice(rest);
            last[rest.len()] = 0x80;
            &self.k2
        };
        for j in 0..16 {
            last[j] ^= x[j] ^ key[j];
        }
        self.cipher.encrypt(last)
    }

    /// Computes a truncated tag of `len` bytes (1 ..= 16).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or greater than 16.
    pub fn tag(&self, message: &[u8], len: usize) -> Vec<u8> {
        assert!(
            (1..=16).contains(&len),
            "tag length must be 1..=16, got {len}"
        );
        self.mac(message)[..len].to_vec()
    }

    /// Computes a stateful truncated tag binding `message` to its `tweak`
    /// (address + counter), as required for replay protection: replaying an
    /// old (data, MAC) pair fails because the current counter differs.
    pub fn stateful_tag(&self, message: &[u8], tweak: Tweak, len: usize) -> Vec<u8> {
        let mut buf = Vec::with_capacity(message.len() + 16);
        buf.extend_from_slice(&tweak.to_block());
        buf.extend_from_slice(message);
        self.tag(&buf, len)
    }

    /// Computes a fixed 8-byte stateful tag as a `u64` (the Plutus MAC
    /// configuration). Convenient for storing tags in simulator tables.
    ///
    /// Equivalent to `mac(tweak_block ‖ message)` but allocation-free —
    /// this sits on every MAC probe of every fill, so the CBC chain is
    /// run incrementally instead of materializing the concatenation.
    pub fn stateful_tag64(&self, message: &[u8], tweak: Tweak) -> u64 {
        let tweak_block = tweak.to_block();
        let mut x;
        if message.is_empty() {
            // The tweak block is the single (full) final block: XOR K1.
            let mut last = tweak_block;
            for (b, k) in last.iter_mut().zip(self.k1.iter()) {
                *b ^= k;
            }
            x = self.cipher.encrypt(last);
        } else {
            // The tweak block is the first full block of the chain.
            x = self.cipher.encrypt(tweak_block);
            let full_blocks = (message.len() - 1) / 16;
            for block in message[..16 * full_blocks].chunks_exact(16) {
                let mut next: [u8; 16] = block.try_into().unwrap();
                for (b, xb) in next.iter_mut().zip(x.iter()) {
                    *b ^= xb;
                }
                x = self.cipher.encrypt(next);
            }
            let rest = &message[16 * full_blocks..];
            let mut last = [0u8; 16];
            let key = if rest.len() == 16 {
                last.copy_from_slice(rest);
                &self.k1
            } else {
                last[..rest.len()].copy_from_slice(rest);
                last[rest.len()] = 0x80;
                &self.k2
            };
            for ((b, xb), k) in last.iter_mut().zip(x.iter()).zip(key.iter()) {
                *b ^= xb ^ k;
            }
            x = self.cipher.encrypt(last);
        }
        u64::from_le_bytes(x[..8].try_into().unwrap())
    }

    /// Computes the stateful 8-byte tags of many independent 32-byte
    /// sectors in lockstep.
    ///
    /// Each tag's CBC chain is three blocks (tweak ‖ sector), so the batch
    /// runs exactly three batched cipher calls over all chains — this is
    /// the entry point fill paths and recovery probes use to verify a
    /// group of sectors as one batch.
    ///
    /// # Panics
    ///
    /// Panics if `sectors.len() != tweaks.len()`.
    pub fn stateful_tag64_many(&self, sectors: &[[u8; 32]], tweaks: &[Tweak]) -> Vec<u64> {
        assert_eq!(
            sectors.len(),
            tweaks.len(),
            "one tweak per sector: {} sectors, {} tweaks",
            sectors.len(),
            tweaks.len()
        );
        // Round 1: encrypt every chain's tweak block.
        let mut states: Vec<[u8; 16]> = tweaks.iter().map(|t| t.to_block()).collect();
        self.cipher.encrypt_blocks(&mut states);
        // Round 2: fold in each sector's first half.
        for (state, sector) in states.iter_mut().zip(sectors.iter()) {
            for (b, m) in state.iter_mut().zip(sector[..16].iter()) {
                *b ^= m;
            }
        }
        self.cipher.encrypt_blocks(&mut states);
        // Round 3: the final full block XORs K1 per RFC 4493.
        for (state, sector) in states.iter_mut().zip(sectors.iter()) {
            for ((b, m), k) in state
                .iter_mut()
                .zip(sector[16..].iter())
                .zip(self.k1.iter())
            {
                *b ^= m ^ k;
            }
        }
        self.cipher.encrypt_blocks(&mut states);
        states
            .iter()
            .map(|s| u64::from_le_bytes(s[..8].try_into().unwrap()))
            .collect()
    }

    /// Computes the full CMACs of many messages, running equal-length
    /// multi-block messages in lockstep so the cipher sees full batches.
    ///
    /// Mixed-length inputs fall back to per-message [`Cmac::mac`]; the
    /// result is identical either way.
    pub fn mac_many(&self, messages: &[&[u8]]) -> Vec<[u8; 16]> {
        let Some(first) = messages.first() else {
            return Vec::new();
        };
        let len = first.len();
        if len == 0 || messages.iter().any(|m| m.len() != len) {
            return messages.iter().map(|m| self.mac(m)).collect();
        }
        let full_blocks = (len - 1) / 16;
        let mut states = vec![[0u8; 16]; messages.len()];
        for i in 0..full_blocks {
            for (state, msg) in states.iter_mut().zip(messages.iter()) {
                for (b, m) in state.iter_mut().zip(msg[16 * i..16 * i + 16].iter()) {
                    *b ^= m;
                }
            }
            self.cipher.encrypt_blocks(&mut states);
        }
        for (state, msg) in states.iter_mut().zip(messages.iter()) {
            let rest = &msg[16 * full_blocks..];
            if rest.len() == 16 {
                for ((b, m), k) in state.iter_mut().zip(rest.iter()).zip(self.k1.iter()) {
                    *b ^= m ^ k;
                }
            } else {
                let mut last = [0u8; 16];
                last[..rest.len()].copy_from_slice(rest);
                last[rest.len()] = 0x80;
                for ((b, m), k) in state.iter_mut().zip(last.iter()).zip(self.k2.iter()) {
                    *b ^= m ^ k;
                }
            }
        }
        self.cipher.encrypt_blocks(&mut states);
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexv(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn rfc4493_cmac() -> Cmac {
        Cmac::new(hexv("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap())
    }

    /// RFC 4493 test vector: empty message.
    #[test]
    fn rfc4493_empty() {
        assert_eq!(
            rfc4493_cmac().mac(b"").to_vec(),
            hexv("bb1d6929e95937287fa37d129b756746")
        );
    }

    /// RFC 4493 test vector: 16-byte message.
    #[test]
    fn rfc4493_one_block() {
        let msg = hexv("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(
            rfc4493_cmac().mac(&msg).to_vec(),
            hexv("070a16b46b4d4144f79bdd9dd04a287c")
        );
    }

    /// RFC 4493 test vector: 40-byte message (partial final block).
    #[test]
    fn rfc4493_forty_bytes() {
        let msg = hexv(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411"
        ));
        assert_eq!(
            rfc4493_cmac().mac(&msg).to_vec(),
            hexv("dfa66747de9ae63030ca32611497c827")
        );
    }

    /// RFC 4493 test vector: 64-byte message.
    #[test]
    fn rfc4493_four_blocks() {
        let msg = hexv(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        assert_eq!(
            rfc4493_cmac().mac(&msg).to_vec(),
            hexv("51f0bebf7e3b9d92fc49741779363cfe")
        );
    }

    #[test]
    fn truncation_is_a_prefix() {
        let cmac = rfc4493_cmac();
        let full = cmac.mac(b"hello");
        assert_eq!(cmac.tag(b"hello", 4), full[..4].to_vec());
        assert_eq!(cmac.tag(b"hello", 8), full[..8].to_vec());
    }

    #[test]
    fn stateful_tag_binds_counter() {
        let cmac = rfc4493_cmac();
        let t1 = cmac.stateful_tag64(b"data", Tweak::new(0x40, 1));
        let t2 = cmac.stateful_tag64(b"data", Tweak::new(0x40, 2));
        assert_ne!(t1, t2, "replay with stale counter must change the tag");
    }

    #[test]
    fn stateful_tag_binds_address() {
        let cmac = rfc4493_cmac();
        let t1 = cmac.stateful_tag64(b"data", Tweak::new(0x40, 1));
        let t2 = cmac.stateful_tag64(b"data", Tweak::new(0x60, 1));
        assert_ne!(t1, t2, "splicing to another address must change the tag");
    }

    #[test]
    #[should_panic(expected = "tag length")]
    fn rejects_oversized_tag() {
        rfc4493_cmac().tag(b"x", 17);
    }

    #[test]
    fn stateful_tag64_matches_stateful_tag() {
        let cmac = rfc4493_cmac();
        let tweak = Tweak::new(0x1234, 56);
        let v = cmac.stateful_tag(b"abc", tweak, 8);
        assert_eq!(
            cmac.stateful_tag64(b"abc", tweak),
            u64::from_le_bytes(v.try_into().unwrap())
        );
    }

    /// The incremental stateful tag must equal the concatenate-then-MAC
    /// definition for every final-block shape (empty, partial, full).
    #[test]
    fn stateful_tag64_matches_concatenation() {
        let cmac = rfc4493_cmac();
        let tweak = Tweak::new(0x7700, 3);
        let message: Vec<u8> = (0..64u8).collect();
        for len in [0, 1, 15, 16, 17, 31, 32, 33, 48, 64] {
            let mut buf = tweak.to_block().to_vec();
            buf.extend_from_slice(&message[..len]);
            let expected = u64::from_le_bytes(cmac.mac(&buf)[..8].try_into().unwrap());
            assert_eq!(
                cmac.stateful_tag64(&message[..len], tweak),
                expected,
                "divergence at message length {len}"
            );
        }
    }

    #[test]
    fn stateful_tag64_many_matches_serial() {
        let cmac = rfc4493_cmac();
        let sectors: Vec<[u8; 32]> = (0..13u8).map(|i| [i.wrapping_mul(17); 32]).collect();
        let tweaks: Vec<Tweak> = (0..13u64).map(|i| Tweak::new(0x20 * i, i + 5)).collect();
        let batch = cmac.stateful_tag64_many(&sectors, &tweaks);
        for ((sector, tweak), tag) in sectors.iter().zip(tweaks.iter()).zip(batch.iter()) {
            assert_eq!(*tag, cmac.stateful_tag64(sector, *tweak));
        }
        assert!(cmac.stateful_tag64_many(&[], &[]).is_empty());
    }

    #[test]
    fn mac_many_matches_serial() {
        let cmac = rfc4493_cmac();
        let backing: Vec<Vec<u8>> = (0..9).map(|i| vec![i as u8; 48]).collect();
        // Equal-length lockstep path.
        let msgs: Vec<&[u8]> = backing.iter().map(|v| v.as_slice()).collect();
        for (msg, tag) in msgs.iter().zip(cmac.mac_many(&msgs).iter()) {
            assert_eq!(*tag, cmac.mac(msg));
        }
        // Mixed-length (and empty) fallback path.
        let mixed: Vec<&[u8]> = vec![b"", b"abc", &backing[0], &backing[1][..17]];
        for (msg, tag) in mixed.iter().zip(cmac.mac_many(&mixed).iter()) {
            assert_eq!(*tag, cmac.mac(msg));
        }
        assert!(cmac.mac_many(&[]).is_empty());
    }
}
