//! AES-CMAC (RFC 4493 / NIST SP 800-38B) with truncation.
//!
//! Secure-memory designs store a truncated MAC per protected unit: Intel SGX
//! uses 56-bit MACs, PSSM uses 32-bit per-sector MACs, and Plutus's baseline
//! uses 64-bit per-sector MACs. This module provides the full 128-bit CMAC
//! plus [`Cmac::tag`] truncation, and a *stateful* variant
//! ([`Cmac::stateful_tag`]) that mixes the encryption tweak into the MAC as
//! Bonsai-Merkle-Tree-style replay protection requires.

use crate::gf128::cmac_double;
use crate::{Aes128, Tweak};

/// An AES-CMAC instance with precomputed subkeys.
///
/// # Example
///
/// ```
/// use plutus_crypto::Cmac;
///
/// let cmac = Cmac::new([0x42; 16]);
/// let tag8 = cmac.tag(b"sector data", 8);
/// assert_eq!(tag8.len(), 8);
/// ```
#[derive(Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

impl std::fmt::Debug for Cmac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cmac")
            .field("subkeys", &"<redacted>")
            .finish()
    }
}

impl Cmac {
    /// Creates a CMAC instance, deriving subkeys `K1`, `K2` from `key`.
    pub fn new(key: [u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let mut k1 = cipher.encrypt([0u8; 16]);
        cmac_double(&mut k1);
        let mut k2 = k1;
        cmac_double(&mut k2);
        Self { cipher, k1, k2 }
    }

    /// Computes the full 128-bit CMAC of `message`.
    pub fn mac(&self, message: &[u8]) -> [u8; 16] {
        let mut x = [0u8; 16];
        if message.is_empty() {
            // Single padded block XOR K2.
            let mut block = [0u8; 16];
            block[0] = 0x80;
            for i in 0..16 {
                block[i] ^= self.k2[i] ^ x[i];
            }
            return self.cipher.encrypt(block);
        }
        let full_blocks = (message.len() - 1) / 16;
        for i in 0..full_blocks {
            let mut block: [u8; 16] = message[16 * i..16 * i + 16].try_into().unwrap();
            for j in 0..16 {
                block[j] ^= x[j];
            }
            x = self.cipher.encrypt(block);
        }
        let rest = &message[16 * full_blocks..];
        let mut last = [0u8; 16];
        let key = if rest.len() == 16 {
            last.copy_from_slice(rest);
            &self.k1
        } else {
            last[..rest.len()].copy_from_slice(rest);
            last[rest.len()] = 0x80;
            &self.k2
        };
        for j in 0..16 {
            last[j] ^= x[j] ^ key[j];
        }
        self.cipher.encrypt(last)
    }

    /// Computes a truncated tag of `len` bytes (1 ..= 16).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or greater than 16.
    pub fn tag(&self, message: &[u8], len: usize) -> Vec<u8> {
        assert!(
            (1..=16).contains(&len),
            "tag length must be 1..=16, got {len}"
        );
        self.mac(message)[..len].to_vec()
    }

    /// Computes a stateful truncated tag binding `message` to its `tweak`
    /// (address + counter), as required for replay protection: replaying an
    /// old (data, MAC) pair fails because the current counter differs.
    pub fn stateful_tag(&self, message: &[u8], tweak: Tweak, len: usize) -> Vec<u8> {
        let mut buf = Vec::with_capacity(message.len() + 16);
        buf.extend_from_slice(&tweak.to_block());
        buf.extend_from_slice(message);
        self.tag(&buf, len)
    }

    /// Computes a fixed 8-byte stateful tag as a `u64` (the Plutus MAC
    /// configuration). Convenient for storing tags in simulator tables.
    pub fn stateful_tag64(&self, message: &[u8], tweak: Tweak) -> u64 {
        let full = {
            let mut buf = Vec::with_capacity(message.len() + 16);
            buf.extend_from_slice(&tweak.to_block());
            buf.extend_from_slice(message);
            self.mac(&buf)
        };
        u64::from_le_bytes(full[..8].try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexv(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn rfc4493_cmac() -> Cmac {
        Cmac::new(hexv("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap())
    }

    /// RFC 4493 test vector: empty message.
    #[test]
    fn rfc4493_empty() {
        assert_eq!(
            rfc4493_cmac().mac(b"").to_vec(),
            hexv("bb1d6929e95937287fa37d129b756746")
        );
    }

    /// RFC 4493 test vector: 16-byte message.
    #[test]
    fn rfc4493_one_block() {
        let msg = hexv("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(
            rfc4493_cmac().mac(&msg).to_vec(),
            hexv("070a16b46b4d4144f79bdd9dd04a287c")
        );
    }

    /// RFC 4493 test vector: 40-byte message (partial final block).
    #[test]
    fn rfc4493_forty_bytes() {
        let msg = hexv(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411"
        ));
        assert_eq!(
            rfc4493_cmac().mac(&msg).to_vec(),
            hexv("dfa66747de9ae63030ca32611497c827")
        );
    }

    /// RFC 4493 test vector: 64-byte message.
    #[test]
    fn rfc4493_four_blocks() {
        let msg = hexv(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        assert_eq!(
            rfc4493_cmac().mac(&msg).to_vec(),
            hexv("51f0bebf7e3b9d92fc49741779363cfe")
        );
    }

    #[test]
    fn truncation_is_a_prefix() {
        let cmac = rfc4493_cmac();
        let full = cmac.mac(b"hello");
        assert_eq!(cmac.tag(b"hello", 4), full[..4].to_vec());
        assert_eq!(cmac.tag(b"hello", 8), full[..8].to_vec());
    }

    #[test]
    fn stateful_tag_binds_counter() {
        let cmac = rfc4493_cmac();
        let t1 = cmac.stateful_tag64(b"data", Tweak::new(0x40, 1));
        let t2 = cmac.stateful_tag64(b"data", Tweak::new(0x40, 2));
        assert_ne!(t1, t2, "replay with stale counter must change the tag");
    }

    #[test]
    fn stateful_tag_binds_address() {
        let cmac = rfc4493_cmac();
        let t1 = cmac.stateful_tag64(b"data", Tweak::new(0x40, 1));
        let t2 = cmac.stateful_tag64(b"data", Tweak::new(0x60, 1));
        assert_ne!(t1, t2, "splicing to another address must change the tag");
    }

    #[test]
    #[should_panic(expected = "tag length")]
    fn rejects_oversized_tag() {
        rfc4493_cmac().tag(b"x", 17);
    }

    #[test]
    fn stateful_tag64_matches_stateful_tag() {
        let cmac = rfc4493_cmac();
        let tweak = Tweak::new(0x1234, 56);
        let v = cmac.stateful_tag(b"abc", tweak, 8);
        assert_eq!(
            cmac.stateful_tag64(b"abc", tweak),
            u64::from_le_bytes(v.try_into().unwrap())
        );
    }
}
