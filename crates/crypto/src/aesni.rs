//! `x86_64` AES-NI + PCLMULQDQ batch kernels.
//!
//! This is the one module in the crate allowed to use `unsafe`: every
//! function below executes AES-NI / carry-less-multiply instructions and is
//! only sound on a CPU that reports them. The safe `try_*` wrappers gate on
//! [`crate::backend::active`], which can only return
//! [`CryptoBackend::AesNi`] after CPUID verification (detection probes the
//! hardware; [`crate::backend::force`] re-asserts it), so callers outside
//! this module never see the unsafety.
//!
//! The kernels process up to [`MAX_LANES`] independent blocks in lockstep so
//! the CPU's pipelined AES units stay full — `aesenc` has multi-cycle
//! latency but single-cycle throughput, so eight interleaved blocks run
//! close to 8x faster than a serial chain. Batch entry points throughout
//! the crate ([`crate::Aes128::encrypt_blocks`],
//! [`crate::ctr::CounterMode::pad_stream`],
//! [`crate::mac::Cmac::stateful_tag64_many`]) exist to feed these kernels
//! full batches.
#![allow(unsafe_code)]

use crate::backend::{self, CryptoBackend};
use core::arch::x86_64::*;

/// Number of blocks processed in lockstep per kernel iteration.
pub const MAX_LANES: usize = 8;

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn load_keys(rk: &[[u8; 16]; 11]) -> [__m128i; 11] {
    let mut keys = [_mm_setzero_si128(); 11];
    for (k, bytes) in keys.iter_mut().zip(rk.iter()) {
        *k = _mm_loadu_si128(bytes.as_ptr().cast());
    }
    keys
}

/// Encrypts `blocks` in place with the byte-layout encryption round keys.
///
/// # Safety
///
/// The CPU must support AES-NI and SSE2.
#[target_feature(enable = "aes,sse2")]
unsafe fn encrypt_blocks(rk: &[[u8; 16]; 11], blocks: &mut [[u8; 16]]) {
    let keys = load_keys(rk);
    for chunk in blocks.chunks_mut(MAX_LANES) {
        let n = chunk.len();
        let mut s = [_mm_setzero_si128(); MAX_LANES];
        for (lane, block) in s.iter_mut().zip(chunk.iter()) {
            *lane = _mm_xor_si128(_mm_loadu_si128(block.as_ptr().cast()), keys[0]);
        }
        for key in &keys[1..10] {
            for lane in s.iter_mut().take(n) {
                *lane = _mm_aesenc_si128(*lane, *key);
            }
        }
        for (lane, block) in s.iter().zip(chunk.iter_mut()) {
            let out = _mm_aesenclast_si128(*lane, keys[10]);
            _mm_storeu_si128(block.as_mut_ptr().cast(), out);
        }
    }
}

/// Decrypts `blocks` in place with the equivalent-inverse-cipher round keys
/// (reversed schedule, `InvMixColumns` applied to the inner keys — exactly
/// what `aesdec` expects).
///
/// # Safety
///
/// The CPU must support AES-NI and SSE2.
#[target_feature(enable = "aes,sse2")]
unsafe fn decrypt_blocks(dk: &[[u8; 16]; 11], blocks: &mut [[u8; 16]]) {
    let keys = load_keys(dk);
    for chunk in blocks.chunks_mut(MAX_LANES) {
        let n = chunk.len();
        let mut s = [_mm_setzero_si128(); MAX_LANES];
        for (lane, block) in s.iter_mut().zip(chunk.iter()) {
            *lane = _mm_xor_si128(_mm_loadu_si128(block.as_ptr().cast()), keys[0]);
        }
        for key in &keys[1..10] {
            for lane in s.iter_mut().take(n) {
                *lane = _mm_aesdec_si128(*lane, *key);
            }
        }
        for (lane, block) in s.iter().zip(chunk.iter_mut()) {
            let out = _mm_aesdeclast_si128(*lane, keys[10]);
            _mm_storeu_si128(block.as_mut_ptr().cast(), out);
        }
    }
}

/// Multiplies an XTS tweak by α (little-endian convention) using a
/// carry-less multiply for the polynomial reduction: the tweak's top bit,
/// isolated into the low lane, is `clmul`'ed with `x^7 + x^2 + x + 1`
/// (0x87) and folded back in.
///
/// # Safety
///
/// The CPU must support PCLMULQDQ and SSE2.
#[target_feature(enable = "pclmulqdq,sse2")]
unsafe fn mul_alpha(t: __m128i) -> __m128i {
    let msb_per_half = _mm_srli_epi64(t, 63);
    // Low half's carry shifts into the high half's bit 0.
    let carry = _mm_slli_si128(msb_per_half, 8);
    // High half's carry (the bit leaving the 128-bit value) selects the
    // reduction polynomial.
    let out_bit = _mm_srli_si128(msb_per_half, 8);
    let reduction = _mm_clmulepi64_si128(out_bit, _mm_set_epi64x(0, 0x87), 0x00);
    let shifted = _mm_slli_epi64(t, 1);
    _mm_xor_si128(_mm_xor_si128(shifted, carry), reduction)
}

/// Writes `t0 · α^i` into `chain[i]`.
///
/// # Safety
///
/// The CPU must support PCLMULQDQ and SSE2.
#[target_feature(enable = "pclmulqdq,sse2")]
unsafe fn fill_tweak_chain(t0: &[u8; 16], chain: &mut [[u8; 16]]) {
    let Some((first, rest)) = chain.split_first_mut() else {
        return;
    };
    let mut t = _mm_loadu_si128(t0.as_ptr().cast());
    _mm_storeu_si128(first.as_mut_ptr().cast(), t);
    for slot in rest {
        t = mul_alpha(t);
        _mm_storeu_si128(slot.as_mut_ptr().cast(), t);
    }
}

/// Batch-encrypts via AES-NI if it is the active backend; returns `false`
/// (leaving `blocks` untouched) when the caller must take the scalar path.
#[inline]
pub(crate) fn try_encrypt_blocks(rk: &[[u8; 16]; 11], blocks: &mut [[u8; 16]]) -> bool {
    if backend::active() != CryptoBackend::AesNi {
        return false;
    }
    // SAFETY: `active()` only reports AesNi after CPUID confirms
    // aes/pclmulqdq/sse2 (see `backend::detect` / `backend::force`).
    unsafe { encrypt_blocks(rk, blocks) };
    true
}

/// Batch-decrypts via AES-NI if it is the active backend; returns `false`
/// (leaving `blocks` untouched) when the caller must take the scalar path.
#[inline]
pub(crate) fn try_decrypt_blocks(dk: &[[u8; 16]; 11], blocks: &mut [[u8; 16]]) -> bool {
    if backend::active() != CryptoBackend::AesNi {
        return false;
    }
    // SAFETY: as in `try_encrypt_blocks`.
    unsafe { decrypt_blocks(dk, blocks) };
    true
}

/// Expands an XTS tweak chain via PCLMULQDQ if AES-NI is the active
/// backend; returns `false` when the caller must take the scalar path.
#[inline]
pub(crate) fn try_fill_tweak_chain(t0: &[u8; 16], chain: &mut [[u8; 16]]) -> bool {
    if backend::active() != CryptoBackend::AesNi {
        return false;
    }
    // SAFETY: as in `try_encrypt_blocks`.
    unsafe { fill_tweak_chain(t0, chain) };
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf128::xts_mul_alpha;

    #[test]
    fn clmul_mul_alpha_matches_scalar() {
        if backend::detect() != CryptoBackend::AesNi {
            return; // nothing to cross-check on this host
        }
        let mut t = [0u8; 16];
        t[0] = 1;
        t[15] = 0xc3; // exercises the reduction on the first doublings
        let mut chain = [[0u8; 16]; 200];
        // SAFETY: detect() confirmed pclmulqdq/sse2 above.
        unsafe { fill_tweak_chain(&t, &mut chain) };
        for step in chain.iter() {
            assert_eq!(*step, t);
            xts_mul_alpha(&mut t);
        }
    }

    #[test]
    fn kernel_roundtrip_and_scalar_equivalence() {
        if backend::detect() != CryptoBackend::AesNi {
            return;
        }
        let aes = crate::Aes128::new(*b"0123456789abcdef");
        let mut blocks: Vec<[u8; 16]> = (0..23u8).map(|i| [i; 16]).collect();
        let plain = blocks.clone();
        // SAFETY: detect() confirmed aes/sse2 above.
        unsafe { encrypt_blocks(aes.enc_round_keys(), &mut blocks) };
        for (ct, pt) in blocks.iter().zip(plain.iter()) {
            assert_eq!(*ct, aes.encrypt_scalar(*pt));
        }
        // SAFETY: as above.
        unsafe { decrypt_blocks(aes.dec_round_keys(), &mut blocks) };
        assert_eq!(blocks, plain);
    }
}
