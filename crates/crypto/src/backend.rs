//! Runtime crypto backend selection.
//!
//! The crate ships two interchangeable implementations of every primitive:
//! the portable scalar T-table path (always available, the pinned reference
//! for golden-file determinism suites) and an `x86_64` AES-NI + PCLMULQDQ
//! path ([`crate::aesni`]) that pipelines batches of independent blocks.
//! Both produce byte-identical output — the SIMD path is a pure speedup, so
//! simulated results never depend on the host CPU.
//!
//! Selection happens once, lazily, via CPUID ([`detect`]) the first time
//! [`active`] is consulted, and can be overridden (e.g. by the
//! `--crypto-backend scalar` experiment flag) with [`force`]. The choice is
//! process-global: secure-memory models clone ciphers freely across engines
//! and worker threads, so per-instance selection would be both racy to
//! configure and impossible to report as a single telemetry gauge.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation services cipher calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoBackend {
    /// Portable table-based software path (the pinned reference).
    Scalar,
    /// `x86_64` AES-NI + PCLMULQDQ batch path.
    AesNi,
}

impl std::fmt::Display for CryptoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CryptoBackend::Scalar => "scalar",
            CryptoBackend::AesNi => "aes-ni",
        })
    }
}

/// 0 = not yet selected, 1 = scalar, 2 = AES-NI.
static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Probes the host CPU for the fast path, ignoring any [`force`] override.
///
/// Returns [`CryptoBackend::AesNi`] only when AES-NI, PCLMULQDQ, and SSE2
/// are all reported by CPUID (the batch kernels use all three).
pub fn detect() -> CryptoBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("aes")
            && std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse2")
        {
            return CryptoBackend::AesNi;
        }
    }
    CryptoBackend::Scalar
}

/// The backend servicing cipher calls, selecting one via [`detect`] on
/// first use.
#[inline]
pub fn active() -> CryptoBackend {
    match BACKEND.load(Ordering::Relaxed) {
        1 => CryptoBackend::Scalar,
        2 => CryptoBackend::AesNi,
        _ => {
            let detected = detect();
            // Racing threads detect the same hardware; last store wins
            // with an identical value.
            BACKEND.store(
                match detected {
                    CryptoBackend::Scalar => 1,
                    CryptoBackend::AesNi => 2,
                },
                Ordering::Relaxed,
            );
            detected
        }
    }
}

/// Pins the process-wide backend, overriding (or pre-empting) detection.
///
/// Forcing [`CryptoBackend::AesNi`] on hardware without the features would
/// abort the process at the first cipher call, so this panics up front
/// instead.
pub fn force(backend: CryptoBackend) {
    assert!(
        backend != CryptoBackend::AesNi || detect() == CryptoBackend::AesNi,
        "cannot force the AES-NI backend: host CPU lacks aes/pclmulqdq/sse2"
    );
    BACKEND.store(
        match backend {
            CryptoBackend::Scalar => 1,
            CryptoBackend::AesNi => 2,
        },
        Ordering::Relaxed,
    );
}

/// Shorthand for `force(CryptoBackend::Scalar)` — the determinism suites'
/// pinned reference.
pub fn force_scalar() {
    force(CryptoBackend::Scalar);
}

impl std::str::FromStr for CryptoBackend {
    type Err = String;

    /// Parses the `--crypto-backend` flag values `scalar` and
    /// `simd`/`aes-ni` (`auto` is handled by the caller — it means "don't
    /// force anything").
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(CryptoBackend::Scalar),
            "simd" | "aes-ni" | "aesni" => Ok(CryptoBackend::AesNi),
            other => Err(format!(
                "unknown crypto backend {other:?} (expected auto, scalar, or simd)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable() {
        assert_eq!(detect(), detect());
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("scalar".parse::<CryptoBackend>(), Ok(CryptoBackend::Scalar));
        assert_eq!("simd".parse::<CryptoBackend>(), Ok(CryptoBackend::AesNi));
        assert_eq!("aes-ni".parse::<CryptoBackend>(), Ok(CryptoBackend::AesNi));
        assert!("turbo".parse::<CryptoBackend>().is_err());
        assert_eq!(CryptoBackend::Scalar.to_string(), "scalar");
        assert_eq!(CryptoBackend::AesNi.to_string(), "aes-ni");
    }

    // `force`/`active` mutate process-global state shared with the
    // equivalence tests running in the same harness, so they are only
    // exercised via `detect`-consistent values here.
    #[test]
    fn active_matches_hardware_or_forced_value() {
        let a = active();
        assert!(a == CryptoBackend::Scalar || a == detect());
    }
}
