//! AES-XTS sector encryption.
//!
//! XTS ("XEX-based tweaked-codebook mode with ciphertext stealing") is the
//! encryption mode Plutus selects for the data path: unlike counter mode,
//! the plaintext passes *through* the block cipher, so any modification of a
//! 16-byte ciphertext block decrypts to an unrelated, effectively uniform
//! 16-byte plaintext block. That diffusion ("malleability resistance") is
//! what makes value-based integrity verification sound.
//!
//! GPU memory sectors are 32 bytes — an exact multiple of the 16-byte cipher
//! block — so the ciphertext-stealing half of XTS is never needed; this
//! implementation handles whole-block sectors of any multiple of 16 bytes.

use crate::gf128::xts_mul_alpha;
use crate::{Aes128, Tweak};

/// An AES-XTS cipher with independent data and tweak keys.
///
/// # Example
///
/// ```
/// use plutus_crypto::{Xts, Tweak};
///
/// let xts = Xts::new([1; 16], [2; 16]);
/// let mut sector = [0u8; 32];
/// xts.encrypt_sector(&mut sector, Tweak::new(0x1000, 0));
/// // Same plaintext, different counter => different ciphertext.
/// let mut sector2 = [0u8; 32];
/// xts.encrypt_sector(&mut sector2, Tweak::new(0x1000, 1));
/// assert_ne!(sector, sector2);
/// ```
#[derive(Debug, Clone)]
pub struct Xts {
    data_cipher: Aes128,
    tweak_cipher: Aes128,
}

impl Xts {
    /// Creates an XTS cipher from the data key (key1) and tweak key (key2).
    pub fn new(data_key: [u8; 16], tweak_key: [u8; 16]) -> Self {
        Self {
            data_cipher: Aes128::new(data_key),
            tweak_cipher: Aes128::new(tweak_key),
        }
    }

    /// Computes the initial whitening value `T = AES_K2(tweak)`.
    fn initial_t(&self, tweak: Tweak) -> [u8; 16] {
        self.tweak_cipher.encrypt(tweak.to_block())
    }

    /// Encrypts `data` in place under `tweak`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a positive multiple of 16.
    pub fn encrypt_sector(&self, data: &mut [u8], tweak: Tweak) {
        self.process(data, tweak, true);
    }

    /// Decrypts `data` in place under `tweak`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a positive multiple of 16.
    pub fn decrypt_sector(&self, data: &mut [u8], tweak: Tweak) {
        self.process(data, tweak, false);
    }

    fn process(&self, data: &mut [u8], tweak: Tweak, encrypt: bool) {
        assert!(
            !data.is_empty() && data.len().is_multiple_of(16),
            "XTS data must be a positive multiple of 16 bytes, got {}",
            data.len()
        );
        let mut t = self.initial_t(tweak);
        for chunk in data.chunks_exact_mut(16) {
            let mut block: [u8; 16] = chunk.try_into().unwrap();
            for (b, tb) in block.iter_mut().zip(t.iter()) {
                *b ^= tb;
            }
            if encrypt {
                self.data_cipher.encrypt_block(&mut block);
            } else {
                self.data_cipher.decrypt_block(&mut block);
            }
            for (b, tb) in block.iter_mut().zip(t.iter()) {
                *b ^= tb;
            }
            chunk.copy_from_slice(&block);
            xts_mul_alpha(&mut t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xts() -> Xts {
        Xts::new(
            *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c",
            *b"\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f",
        )
    }

    #[test]
    fn roundtrip_32_byte_sector() {
        let x = xts();
        let original = *b"value locality in GPU sectors!!!";
        let mut data = original;
        x.encrypt_sector(&mut data, Tweak::new(0xabc0, 3));
        assert_ne!(data, original);
        x.decrypt_sector(&mut data, Tweak::new(0xabc0, 3));
        assert_eq!(data, original);
    }

    #[test]
    fn roundtrip_128_byte_line() {
        let x = xts();
        let original: Vec<u8> = (0..128u8).collect();
        let mut data = original.clone();
        x.encrypt_sector(&mut data, Tweak::new(0, 0));
        x.decrypt_sector(&mut data, Tweak::new(0, 0));
        assert_eq!(data, original);
    }

    #[test]
    fn different_addresses_give_different_ciphertexts() {
        let x = xts();
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        x.encrypt_sector(&mut a, Tweak::new(0x1000, 0));
        x.encrypt_sector(&mut b, Tweak::new(0x1020, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn different_counters_give_different_ciphertexts() {
        let x = xts();
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        x.encrypt_sector(&mut a, Tweak::new(0x1000, 0));
        x.encrypt_sector(&mut b, Tweak::new(0x1000, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn wrong_counter_fails_to_decrypt() {
        let x = xts();
        let original = [7u8; 32];
        let mut data = original;
        x.encrypt_sector(&mut data, Tweak::new(0x40, 5));
        x.decrypt_sector(&mut data, Tweak::new(0x40, 6));
        assert_ne!(
            data, original,
            "replayed counter must not decrypt correctly"
        );
    }

    /// The property Plutus relies on: flipping any ciphertext bit
    /// randomizes the *entire* containing 16-byte block (and only that
    /// block).
    #[test]
    fn tamper_diffusion_is_block_wide_and_block_local() {
        let x = xts();
        let original = [0x5au8; 32];
        let mut ct = original;
        x.encrypt_sector(&mut ct, Tweak::new(0x2000, 9));

        let mut tampered = ct;
        tampered[3] ^= 0x10; // flip one bit in the first cipher block
        x.decrypt_sector(&mut tampered, Tweak::new(0x2000, 9));

        // Second block untouched: decrypts to the original plaintext.
        assert_eq!(&tampered[16..], &original[16..]);
        // First block: wide diffusion, many bits differ.
        let differing: u32 = tampered[..16]
            .iter()
            .zip(original[..16].iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(
            differing > 32,
            "only {differing} bits differ in tampered block"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_unaligned_length() {
        let x = xts();
        let mut data = [0u8; 20];
        x.encrypt_sector(&mut data, Tweak::new(0, 0));
    }

    #[test]
    fn per_block_tweak_progression_matches_manual_xex() {
        // Encrypting a 32-byte sector must equal encrypting each 16-byte
        // block with T and T·α respectively.
        let x = xts();
        let mut sector = [0x11u8; 32];
        x.encrypt_sector(&mut sector, Tweak::new(0x77, 2));

        let t0 = x.tweak_cipher.encrypt(Tweak::new(0x77, 2).to_block());
        let mut t1 = t0;
        crate::gf128::xts_mul_alpha(&mut t1);

        let xex = |t: [u8; 16]| {
            let mut b = [0x11u8; 16];
            for (bb, tb) in b.iter_mut().zip(t.iter()) {
                *bb ^= tb;
            }
            x.data_cipher.encrypt_block(&mut b);
            for (bb, tb) in b.iter_mut().zip(t.iter()) {
                *bb ^= tb;
            }
            b
        };
        assert_eq!(&sector[..16], &xex(t0));
        assert_eq!(&sector[16..], &xex(t1));
    }
}
