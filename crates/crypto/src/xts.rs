//! AES-XTS sector encryption.
//!
//! XTS ("XEX-based tweaked-codebook mode with ciphertext stealing") is the
//! encryption mode Plutus selects for the data path: unlike counter mode,
//! the plaintext passes *through* the block cipher, so any modification of a
//! 16-byte ciphertext block decrypts to an unrelated, effectively uniform
//! 16-byte plaintext block. That diffusion ("malleability resistance") is
//! what makes value-based integrity verification sound.
//!
//! GPU memory sectors are 32 bytes — an exact multiple of the 16-byte cipher
//! block — so the ciphertext-stealing half of XTS is never needed; this
//! implementation handles whole-block sectors of any multiple of 16 bytes.

use crate::gf128::fill_tweak_chain;
use crate::{Aes128, Tweak};

/// An AES-XTS cipher with independent data and tweak keys.
///
/// # Example
///
/// ```
/// use plutus_crypto::{Xts, Tweak};
///
/// let xts = Xts::new([1; 16], [2; 16]);
/// let mut sector = [0u8; 32];
/// xts.encrypt_sector(&mut sector, Tweak::new(0x1000, 0));
/// // Same plaintext, different counter => different ciphertext.
/// let mut sector2 = [0u8; 32];
/// xts.encrypt_sector(&mut sector2, Tweak::new(0x1000, 1));
/// assert_ne!(sector, sector2);
/// ```
#[derive(Debug, Clone)]
pub struct Xts {
    data_cipher: Aes128,
    tweak_cipher: Aes128,
}

impl Xts {
    /// Creates an XTS cipher from the data key (key1) and tweak key (key2).
    pub fn new(data_key: [u8; 16], tweak_key: [u8; 16]) -> Self {
        Self {
            data_cipher: Aes128::new(data_key),
            tweak_cipher: Aes128::new(tweak_key),
        }
    }

    /// Computes the initial whitening value `T = AES_K2(tweak)`.
    fn initial_t(&self, tweak: Tweak) -> [u8; 16] {
        self.tweak_cipher.encrypt(tweak.to_block())
    }

    /// Encrypts `data` in place under `tweak`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a positive multiple of 16.
    pub fn encrypt_sector(&self, data: &mut [u8], tweak: Tweak) {
        self.process(data, tweak, true);
    }

    /// Decrypts `data` in place under `tweak`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a positive multiple of 16.
    pub fn decrypt_sector(&self, data: &mut [u8], tweak: Tweak) {
        self.process(data, tweak, false);
    }

    /// Encrypts many independent 32-byte sectors in place, batching all
    /// tweak-cipher and data-cipher blocks (2 per sector) into single
    /// cipher calls — the fill-path entry point for group re-encryption
    /// and recovery probes.
    ///
    /// # Panics
    ///
    /// Panics if `sectors.len() != tweaks.len()`.
    pub fn encrypt_sectors(&self, sectors: &mut [[u8; 32]], tweaks: &[Tweak]) {
        self.process_sectors(sectors, tweaks, true);
    }

    /// Decrypts many independent 32-byte sectors in place (see
    /// [`Xts::encrypt_sectors`]).
    ///
    /// # Panics
    ///
    /// Panics if `sectors.len() != tweaks.len()`.
    pub fn decrypt_sectors(&self, sectors: &mut [[u8; 32]], tweaks: &[Tweak]) {
        self.process_sectors(sectors, tweaks, false);
    }

    /// Batch XEX over many whole sectors, each under its own tweak.
    pub fn process_sectors(&self, sectors: &mut [[u8; 32]], tweaks: &[Tweak], encrypt: bool) {
        assert_eq!(
            sectors.len(),
            tweaks.len(),
            "one tweak per sector: {} sectors, {} tweaks",
            sectors.len(),
            tweaks.len()
        );
        // One batched tweak-cipher call computes every sector's initial T.
        let mut ts: Vec<[u8; 16]> = tweaks.iter().map(|t| t.to_block()).collect();
        self.tweak_cipher.encrypt_blocks(&mut ts);
        // Whiten all 2·n data blocks, then run them through the data
        // cipher as one batch.
        let mut whitening: Vec<[u8; 16]> = Vec::with_capacity(2 * sectors.len());
        let mut blocks: Vec<[u8; 16]> = Vec::with_capacity(2 * sectors.len());
        for (sector, t0) in sectors.iter().zip(ts.iter()) {
            let mut pair = [[0u8; 16]; 2];
            fill_tweak_chain(*t0, &mut pair);
            for (half, t) in sector.chunks_exact(16).zip(pair.iter()) {
                let mut block: [u8; 16] = half.try_into().unwrap();
                for (b, tb) in block.iter_mut().zip(t.iter()) {
                    *b ^= tb;
                }
                whitening.push(*t);
                blocks.push(block);
            }
        }
        if encrypt {
            self.data_cipher.encrypt_blocks(&mut blocks);
        } else {
            self.data_cipher.decrypt_blocks(&mut blocks);
        }
        for (sector, (pair, ws)) in sectors
            .iter_mut()
            .zip(blocks.chunks_exact(2).zip(whitening.chunks_exact(2)))
        {
            for ((half, block), t) in sector.chunks_exact_mut(16).zip(pair).zip(ws) {
                for ((d, b), tb) in half.iter_mut().zip(block.iter()).zip(t.iter()) {
                    *d = b ^ tb;
                }
            }
        }
    }

    fn process(&self, data: &mut [u8], tweak: Tweak, encrypt: bool) {
        assert!(
            !data.is_empty() && data.len().is_multiple_of(16),
            "XTS data must be a positive multiple of 16 bytes, got {}",
            data.len()
        );
        // Even a single sector batches its own blocks (2 for a 32-byte
        // sector) so the cipher's pipelined units see independent work;
        // lines up to 128 B stay on the stack.
        let nblocks = data.len() / 16;
        const STACK_BLOCKS: usize = 8;
        if nblocks <= STACK_BLOCKS {
            let mut ts = [[0u8; 16]; STACK_BLOCKS];
            let mut blocks = [[0u8; 16]; STACK_BLOCKS];
            self.xex(
                data,
                &mut ts[..nblocks],
                &mut blocks[..nblocks],
                tweak,
                encrypt,
            );
        } else {
            let mut ts = vec![[0u8; 16]; nblocks];
            let mut blocks = vec![[0u8; 16]; nblocks];
            self.xex(data, &mut ts, &mut blocks, tweak, encrypt);
        }
    }

    /// XEX over one data unit: whiten with the tweak chain, one batched
    /// cipher call, de-whiten. `ts` and `blocks` are caller scratch sized
    /// to the block count.
    fn xex(
        &self,
        data: &mut [u8],
        ts: &mut [[u8; 16]],
        blocks: &mut [[u8; 16]],
        tweak: Tweak,
        encrypt: bool,
    ) {
        fill_tweak_chain(self.initial_t(tweak), ts);
        for ((block, chunk), t) in blocks.iter_mut().zip(data.chunks_exact(16)).zip(ts.iter()) {
            block.copy_from_slice(chunk);
            for (b, tb) in block.iter_mut().zip(t.iter()) {
                *b ^= tb;
            }
        }
        if encrypt {
            self.data_cipher.encrypt_blocks(blocks);
        } else {
            self.data_cipher.decrypt_blocks(blocks);
        }
        for ((chunk, block), t) in data.chunks_exact_mut(16).zip(blocks.iter()).zip(ts.iter()) {
            for ((d, b), tb) in chunk.iter_mut().zip(block.iter()).zip(t.iter()) {
                *d = b ^ tb;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexv(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    /// IEEE P1619 XTS-AES-128 Vector 2: key1 = 0x11…, key2 = 0x22…,
    /// data-unit sequence number 0x3333333333, 32 bytes of 0x44.
    ///
    /// The DUSN maps onto this crate's tweak layout as a little-endian
    /// address with counter 0 (both serialize to the same 16-byte tweak
    /// block), so the published ciphertext pins both the cipher and the
    /// tweak serialization. Cross-checked against OpenSSL's XTS.
    #[test]
    fn ieee_p1619_vector_2() {
        let x = Xts::new([0x11; 16], [0x22; 16]);
        let mut data = [0x44u8; 32];
        x.encrypt_sector(&mut data, Tweak::new(0x33_3333_3333, 0));
        assert_eq!(
            data.to_vec(),
            hexv("c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0")
        );
        x.decrypt_sector(&mut data, Tweak::new(0x33_3333_3333, 0));
        assert_eq!(data, [0x44u8; 32]);
    }

    /// OpenSSL-generated vector exercising the full tweak structure
    /// (address 0x1000, counter 7) on a 32-byte sector.
    #[test]
    fn openssl_vector_32_byte_sector() {
        let mut k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        for i in 0..16 {
            k1[i] = 0x10 + i as u8;
            k2[i] = 0xa0 + i as u8;
        }
        let x = Xts::new(k1, k2);
        let mut data = [0u8; 32];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(7).wrapping_add(3);
        }
        let plain = data;
        x.encrypt_sector(&mut data, Tweak::new(0x1000, 7));
        assert_eq!(
            data.to_vec(),
            hexv("b6ca4875dd8975f2a4d6b9f3ade01164d5099658fbc7fe2bd61bee2374f44b04")
        );
        x.decrypt_sector(&mut data, Tweak::new(0x1000, 7));
        assert_eq!(data, plain);
    }

    /// OpenSSL-generated vector for a 64-byte data unit (four cipher
    /// blocks), pinning the tweak progression T·αⁱ beyond one sector.
    #[test]
    fn openssl_vector_64_byte_unit() {
        let mut k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        for i in 0..16 {
            k1[i] = 0x10 + i as u8;
            k2[i] = 0xa0 + i as u8;
        }
        let x = Xts::new(k1, k2);
        let mut data = [0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(13).wrapping_add(1);
        }
        x.encrypt_sector(&mut data, Tweak::new(0x40, 0xdead_beef));
        assert_eq!(
            data.to_vec(),
            hexv(concat!(
                "23eabd592714a91101b5fed78ef488d2e561c2f18d096c007a858cb96d90cfb2",
                "8b8cfc19802a5a1daf9b0c939f8784597481e9da7bcb0a581ce6c6a70169b752"
            ))
        );
    }

    fn xts() -> Xts {
        Xts::new(
            *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c",
            *b"\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f",
        )
    }

    #[test]
    fn roundtrip_32_byte_sector() {
        let x = xts();
        let original = *b"value locality in GPU sectors!!!";
        let mut data = original;
        x.encrypt_sector(&mut data, Tweak::new(0xabc0, 3));
        assert_ne!(data, original);
        x.decrypt_sector(&mut data, Tweak::new(0xabc0, 3));
        assert_eq!(data, original);
    }

    #[test]
    fn roundtrip_128_byte_line() {
        let x = xts();
        let original: Vec<u8> = (0..128u8).collect();
        let mut data = original.clone();
        x.encrypt_sector(&mut data, Tweak::new(0, 0));
        x.decrypt_sector(&mut data, Tweak::new(0, 0));
        assert_eq!(data, original);
    }

    #[test]
    fn different_addresses_give_different_ciphertexts() {
        let x = xts();
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        x.encrypt_sector(&mut a, Tweak::new(0x1000, 0));
        x.encrypt_sector(&mut b, Tweak::new(0x1020, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn different_counters_give_different_ciphertexts() {
        let x = xts();
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        x.encrypt_sector(&mut a, Tweak::new(0x1000, 0));
        x.encrypt_sector(&mut b, Tweak::new(0x1000, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn wrong_counter_fails_to_decrypt() {
        let x = xts();
        let original = [7u8; 32];
        let mut data = original;
        x.encrypt_sector(&mut data, Tweak::new(0x40, 5));
        x.decrypt_sector(&mut data, Tweak::new(0x40, 6));
        assert_ne!(
            data, original,
            "replayed counter must not decrypt correctly"
        );
    }

    /// The property Plutus relies on: flipping any ciphertext bit
    /// randomizes the *entire* containing 16-byte block (and only that
    /// block).
    #[test]
    fn tamper_diffusion_is_block_wide_and_block_local() {
        let x = xts();
        let original = [0x5au8; 32];
        let mut ct = original;
        x.encrypt_sector(&mut ct, Tweak::new(0x2000, 9));

        let mut tampered = ct;
        tampered[3] ^= 0x10; // flip one bit in the first cipher block
        x.decrypt_sector(&mut tampered, Tweak::new(0x2000, 9));

        // Second block untouched: decrypts to the original plaintext.
        assert_eq!(&tampered[16..], &original[16..]);
        // First block: wide diffusion, many bits differ.
        let differing: u32 = tampered[..16]
            .iter()
            .zip(original[..16].iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(
            differing > 32,
            "only {differing} bits differ in tampered block"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_unaligned_length() {
        let x = xts();
        let mut data = [0u8; 20];
        x.encrypt_sector(&mut data, Tweak::new(0, 0));
    }

    #[test]
    fn process_sectors_matches_serial_sectors() {
        let x = xts();
        let tweaks: Vec<Tweak> = (0..11u64)
            .map(|i| Tweak::new(0x20 * i, 3 * i + 1))
            .collect();
        let mut batch: Vec<[u8; 32]> = (0..11u8).map(|i| [i.wrapping_mul(31); 32]).collect();
        let mut serial = batch.clone();
        x.encrypt_sectors(&mut batch, &tweaks);
        for (sector, tweak) in serial.iter_mut().zip(tweaks.iter()) {
            x.encrypt_sector(sector, *tweak);
        }
        assert_eq!(batch, serial, "batch encrypt diverges from serial");
        x.decrypt_sectors(&mut batch, &tweaks);
        for (sector, tweak) in serial.iter_mut().zip(tweaks.iter()) {
            x.decrypt_sector(sector, *tweak);
        }
        assert_eq!(batch, serial, "batch decrypt diverges from serial");
        x.encrypt_sectors(&mut [], &[]);
    }

    #[test]
    fn per_block_tweak_progression_matches_manual_xex() {
        // Encrypting a 32-byte sector must equal encrypting each 16-byte
        // block with T and T·α respectively.
        let x = xts();
        let mut sector = [0x11u8; 32];
        x.encrypt_sector(&mut sector, Tweak::new(0x77, 2));

        let t0 = x.tweak_cipher.encrypt(Tweak::new(0x77, 2).to_block());
        let mut t1 = t0;
        crate::gf128::xts_mul_alpha(&mut t1);

        let xex = |t: [u8; 16]| {
            let mut b = [0x11u8; 16];
            for (bb, tb) in b.iter_mut().zip(t.iter()) {
                *bb ^= tb;
            }
            x.data_cipher.encrypt_block(&mut b);
            for (bb, tb) in b.iter_mut().zip(t.iter()) {
                *bb ^= tb;
            }
            b
        };
        assert_eq!(&sector[..16], &xex(t0));
        assert_eq!(&sector[16..], &xex(t1));
    }
}
