//! GF(2^128) doubling operations used by XTS tweaks and CMAC subkeys.
//!
//! Both XTS and CMAC multiply a 128-bit value by `x` (α) in
//! GF(2^128) / (x^128 + x^7 + x^2 + x + 1), but with opposite byte/bit
//! conventions:
//!
//! - **XTS** (IEEE 1619) treats the 16-byte tweak as little-endian: bit 0 of
//!   byte 0 is the least-significant coefficient, and the reduction constant
//!   `0x87` folds into byte 0.
//! - **CMAC** (RFC 4493 / NIST SP 800-38B) treats the block as big-endian:
//!   the most-significant bit of byte 0 carries out, and `0x87` folds into
//!   byte 15.

/// Multiplies a 16-byte XTS tweak by α (little-endian convention).
///
/// This advances the tweak from cipher block `j` to block `j + 1` within a
/// sector.
#[inline]
pub fn xts_mul_alpha(tweak: &mut [u8; 16]) {
    let mut carry = 0u8;
    for byte in tweak.iter_mut() {
        let new_carry = *byte >> 7;
        *byte = (*byte << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        tweak[0] ^= 0x87;
    }
}

/// Multiplies a 16-byte block by `x` in the CMAC (big-endian) convention.
///
/// Used to derive the CMAC subkeys `K1 = L·x` and `K2 = L·x²`.
#[inline]
pub fn cmac_double(block: &mut [u8; 16]) {
    let mut carry = 0u8;
    for byte in block.iter_mut().rev() {
        let new_carry = *byte >> 7;
        *byte = (*byte << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        tweak_fold_be(block);
    }
}

#[inline]
fn tweak_fold_be(block: &mut [u8; 16]) {
    block[15] ^= 0x87;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xts_mul_alpha_shifts_low_bit_up() {
        let mut t = [0u8; 16];
        t[0] = 1;
        xts_mul_alpha(&mut t);
        assert_eq!(t[0], 2);
        // 64 more doublings move the bit into byte 8.
        for _ in 0..63 {
            xts_mul_alpha(&mut t);
        }
        assert_eq!(t[8], 1);
        assert_eq!(t[0], 0);
    }

    #[test]
    fn xts_mul_alpha_reduces_on_overflow() {
        let mut t = [0u8; 16];
        t[15] = 0x80; // x^127
        xts_mul_alpha(&mut t);
        // x^128 ≡ x^7 + x^2 + x + 1 = 0x87 in byte 0.
        let mut expected = [0u8; 16];
        expected[0] = 0x87;
        assert_eq!(t, expected);
    }

    #[test]
    fn cmac_double_reduces_on_overflow() {
        let mut b = [0u8; 16];
        b[0] = 0x80;
        cmac_double(&mut b);
        let mut expected = [0u8; 16];
        expected[15] = 0x87;
        assert_eq!(b, expected);
    }

    #[test]
    fn cmac_double_plain_shift() {
        let mut b = [0u8; 16];
        b[15] = 0x01;
        cmac_double(&mut b);
        let mut expected = [0u8; 16];
        expected[15] = 0x02;
        assert_eq!(b, expected);
    }

    /// Doubling 128 times returns to the reduction polynomial pattern, never
    /// to zero (the map is a bijection on nonzero elements).
    #[test]
    fn doubling_never_reaches_zero() {
        let mut t = [0u8; 16];
        t[3] = 0x5a;
        for _ in 0..1000 {
            xts_mul_alpha(&mut t);
            assert_ne!(t, [0u8; 16]);
        }
        let mut b = [0u8; 16];
        b[3] = 0x5a;
        for _ in 0..1000 {
            cmac_double(&mut b);
            assert_ne!(b, [0u8; 16]);
        }
    }
}
