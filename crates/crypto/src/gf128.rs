//! GF(2^128) doubling operations used by XTS tweaks and CMAC subkeys.
//!
//! Both XTS and CMAC multiply a 128-bit value by `x` (α) in
//! GF(2^128) / (x^128 + x^7 + x^2 + x + 1), but with opposite byte/bit
//! conventions:
//!
//! - **XTS** (IEEE 1619) treats the 16-byte tweak as little-endian: bit 0 of
//!   byte 0 is the least-significant coefficient, and the reduction constant
//!   `0x87` folds into byte 0.
//! - **CMAC** (RFC 4493 / NIST SP 800-38B) treats the block as big-endian:
//!   the most-significant bit of byte 0 carries out, and `0x87` folds into
//!   byte 15.

/// Multiplies a 16-byte XTS tweak by α (little-endian convention).
///
/// This advances the tweak from cipher block `j` to block `j + 1` within a
/// sector.
#[inline]
pub fn xts_mul_alpha(tweak: &mut [u8; 16]) {
    let mut carry = 0u8;
    for byte in tweak.iter_mut() {
        let new_carry = *byte >> 7;
        *byte = (*byte << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        tweak[0] ^= 0x87;
    }
}

/// Writes the XTS tweak progression `t0 · α^i` into `chain[i]`.
///
/// This is the batch form of repeated [`xts_mul_alpha`]: the AES-NI
/// backend computes the polynomial reduction with PCLMULQDQ, the scalar
/// fallback iterates the byte-wise doubling. Both fill `chain`
/// identically.
#[inline]
pub fn fill_tweak_chain(t0: [u8; 16], chain: &mut [[u8; 16]]) {
    #[cfg(target_arch = "x86_64")]
    if crate::aesni::try_fill_tweak_chain(&t0, chain) {
        return;
    }
    let mut t = t0;
    for slot in chain.iter_mut() {
        *slot = t;
        xts_mul_alpha(&mut t);
    }
}

/// Multiplies a 16-byte block by `x` in the CMAC (big-endian) convention.
///
/// Used to derive the CMAC subkeys `K1 = L·x` and `K2 = L·x²`.
#[inline]
pub fn cmac_double(block: &mut [u8; 16]) {
    let mut carry = 0u8;
    for byte in block.iter_mut().rev() {
        let new_carry = *byte >> 7;
        *byte = (*byte << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        tweak_fold_be(block);
    }
}

#[inline]
fn tweak_fold_be(block: &mut [u8; 16]) {
    block[15] ^= 0x87;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xts_mul_alpha_shifts_low_bit_up() {
        let mut t = [0u8; 16];
        t[0] = 1;
        xts_mul_alpha(&mut t);
        assert_eq!(t[0], 2);
        // 64 more doublings move the bit into byte 8.
        for _ in 0..63 {
            xts_mul_alpha(&mut t);
        }
        assert_eq!(t[8], 1);
        assert_eq!(t[0], 0);
    }

    #[test]
    fn xts_mul_alpha_reduces_on_overflow() {
        let mut t = [0u8; 16];
        t[15] = 0x80; // x^127
        xts_mul_alpha(&mut t);
        // x^128 ≡ x^7 + x^2 + x + 1 = 0x87 in byte 0.
        let mut expected = [0u8; 16];
        expected[0] = 0x87;
        assert_eq!(t, expected);
    }

    #[test]
    fn cmac_double_reduces_on_overflow() {
        let mut b = [0u8; 16];
        b[0] = 0x80;
        cmac_double(&mut b);
        let mut expected = [0u8; 16];
        expected[15] = 0x87;
        assert_eq!(b, expected);
    }

    #[test]
    fn cmac_double_plain_shift() {
        let mut b = [0u8; 16];
        b[15] = 0x01;
        cmac_double(&mut b);
        let mut expected = [0u8; 16];
        expected[15] = 0x02;
        assert_eq!(b, expected);
    }

    /// `fill_tweak_chain` must agree with step-by-step doubling on
    /// whatever backend is active.
    #[test]
    fn tweak_chain_matches_stepwise_doubling() {
        let mut t0 = [0u8; 16];
        t0[0] = 0x35;
        t0[15] = 0x91; // reduction fires within the first couple of steps
        let mut chain = [[0u8; 16]; 65];
        fill_tweak_chain(t0, &mut chain);
        let mut t = t0;
        for step in chain.iter() {
            assert_eq!(*step, t);
            xts_mul_alpha(&mut t);
        }
        // Zero-length chains are a no-op, not a panic.
        fill_tweak_chain(t0, &mut []);
    }

    /// Doubling 128 times returns to the reduction polynomial pattern, never
    /// to zero (the map is a bijection on nonzero elements).
    #[test]
    fn doubling_never_reaches_zero() {
        let mut t = [0u8; 16];
        t[3] = 0x5a;
        for _ in 0..1000 {
            xts_mul_alpha(&mut t);
            assert_ne!(t, [0u8; 16]);
        }
        let mut b = [0u8; 16];
        b[3] = 0x5a;
        for _ in 0..1000 {
            cmac_double(&mut b);
            assert_ne!(b, [0u8; 16]);
        }
    }
}
