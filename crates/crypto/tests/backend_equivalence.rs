//! Scalar-vs-SIMD backend equivalence property test.
//!
//! Runs the full primitive surface — XTS sectors (single and batched, many
//! lengths), CME pads and pad streams, CMAC (plain, stateful, batched) —
//! under the forced-scalar backend and again under the detected native
//! backend, and demands byte-identical output. On a host without AES-NI
//! both passes use the scalar path and the test is trivially green; on an
//! AES-NI runner this is the gate that the SIMD kernels compute exactly
//! the same functions.
//!
//! Backend forcing is process-global, so this file deliberately contains a
//! single `#[test]` — a sibling test running concurrently could observe
//! the temporary scalar forcing.

use plutus_crypto::{backend, Cmac, CounterMode, Tweak, Xts};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn key(&mut self) -> [u8; 16] {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&self.next().to_le_bytes());
        k[8..].copy_from_slice(&self.next().to_le_bytes());
        k
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn tweak(&mut self) -> Tweak {
        // CME requires 32-byte-aligned addresses; XTS and CMAC accept any.
        Tweak::new(self.next() & !31, self.next())
    }
}

/// Every primitive's output over a deterministic sample of keys, tweaks,
/// and lengths, under whichever backend is currently active.
fn sample_all_primitives() -> Vec<Vec<u8>> {
    let mut rng = Rng(0x5eed_5eed_5eed_5eed);
    let mut out = Vec::new();
    for trial in 0..24 {
        let xts = Xts::new(rng.key(), rng.key());
        let cme = CounterMode::new(rng.key());
        let cmac = Cmac::new(rng.key());
        let tweak = rng.tweak();

        // XTS: one data unit of varying length (1..16 blocks).
        let len = 16 * (1 + trial % 16);
        let mut unit = rng.bytes(len);
        xts.encrypt_sector(&mut unit, tweak);
        out.push(unit.clone());
        xts.decrypt_sector(&mut unit, tweak);
        out.push(unit);

        // XTS: batched sectors.
        let n = trial % 11;
        let mut sectors = vec![[0u8; 32]; n];
        let mut tweaks = Vec::with_capacity(n);
        for sector in sectors.iter_mut() {
            sector.copy_from_slice(&rng.bytes(32));
            tweaks.push(rng.tweak());
        }
        xts.encrypt_sectors(&mut sectors, &tweaks);
        out.push(sectors.concat());

        // CME: full pad stream plus batched sector application.
        out.push(cme.pad_stream(tweak, 16).concat());
        let mut cme_sectors = sectors.clone();
        cme.apply_sectors(&mut cme_sectors, &tweaks);
        out.push(cme_sectors.concat());

        // CMAC: plain (varying final-block shape), stateful, and batched.
        let msg = rng.bytes(1 + (trial * 7) % 64);
        out.push(cmac.mac(&msg).to_vec());
        out.push(cmac.stateful_tag64(&msg, tweak).to_le_bytes().to_vec());
        out.push(
            cmac.stateful_tag64_many(&sectors, &tweaks)
                .iter()
                .flat_map(|t| t.to_le_bytes())
                .collect(),
        );
        let refs: Vec<&[u8]> = sectors.iter().map(|s| s.as_slice()).collect();
        out.push(cmac.mac_many(&refs).concat());
    }
    out
}

#[test]
fn scalar_and_native_backends_are_byte_identical() {
    backend::force_scalar();
    assert_eq!(backend::active(), backend::CryptoBackend::Scalar);
    let scalar = sample_all_primitives();

    let native = backend::detect();
    backend::force(native);
    assert_eq!(backend::active(), native);
    let fast = sample_all_primitives();

    assert_eq!(
        scalar.len(),
        fast.len(),
        "sampling is deterministic; lengths must agree"
    );
    for (i, (s, f)) in scalar.iter().zip(fast.iter()).enumerate() {
        assert_eq!(s, f, "backend divergence in sample {i} (backend {native})");
    }
}
