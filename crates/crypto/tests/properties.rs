//! Property-based tests for the crypto substrate.

use plutus_crypto::{Aes128, Cmac, CounterMode, Tweak, Xts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn aes_roundtrips(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(key);
        prop_assert_eq!(aes.decrypt(aes.encrypt(block)), block);
    }

    #[test]
    fn aes_is_injective_per_key(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let aes = Aes128::new(key);
        prop_assert_ne!(aes.encrypt(a), aes.encrypt(b));
    }

    #[test]
    fn xts_roundtrips_any_sector(
        k1 in any::<[u8; 16]>(),
        k2 in any::<[u8; 16]>(),
        data in any::<[u8; 32]>(),
        addr in any::<u64>(),
        ctr in any::<u64>(),
    ) {
        let xts = Xts::new(k1, k2);
        let mut buf = data;
        xts.encrypt_sector(&mut buf, Tweak::new(addr, ctr));
        prop_assert_ne!(buf, data);
        xts.decrypt_sector(&mut buf, Tweak::new(addr, ctr));
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn xts_tamper_diffuses_at_least_a_quarter_of_block_bits(
        data in any::<[u8; 32]>(),
        addr in any::<u64>(),
        ctr in any::<u64>(),
        byte in 0usize..16,
        bit in 0u8..8,
    ) {
        // The malleability-resistance property behind Plutus idea ①:
        // flipping any ciphertext bit randomizes its 16-byte block.
        let xts = Xts::new([1; 16], [2; 16]);
        let mut ct = data;
        xts.encrypt_sector(&mut ct, Tweak::new(addr, ctr));
        ct[byte] ^= 1 << bit;
        xts.decrypt_sector(&mut ct, Tweak::new(addr, ctr));
        let differing: u32 = ct[..16]
            .iter()
            .zip(data[..16].iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        prop_assert!(differing >= 32, "only {} bits diffused", differing);
        // The untouched second block decrypts cleanly.
        prop_assert_eq!(&ct[16..], &data[16..]);
    }

    #[test]
    fn cme_roundtrips_and_is_bit_malleable(
        key in any::<[u8; 16]>(),
        data in any::<[u8; 32]>(),
        addr in any::<u64>(),
        ctr in any::<u64>(),
        byte in 0usize..32,
        bit in 0u8..8,
    ) {
        let cme = CounterMode::new(key);
        let t = Tweak::new(addr, ctr);
        let mut ct = data;
        cme.apply(&mut ct, t);
        // Flip one ciphertext bit → exactly that plaintext bit flips.
        ct[byte] ^= 1 << bit;
        cme.apply(&mut ct, t);
        let mut expected = data;
        expected[byte] ^= 1 << bit;
        prop_assert_eq!(ct, expected);
    }

    #[test]
    fn cmac_tags_differ_for_different_messages(
        key in any::<[u8; 16]>(),
        a in proptest::collection::vec(any::<u8>(), 0..80),
        b in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        prop_assume!(a != b);
        let cmac = Cmac::new(key);
        prop_assert_ne!(cmac.mac(&a), cmac.mac(&b));
    }

    #[test]
    fn cmac_truncation_is_prefix(key in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..64), len in 1usize..=16) {
        let cmac = Cmac::new(key);
        let full = cmac.mac(&msg);
        prop_assert_eq!(cmac.tag(&msg, len), full[..len].to_vec());
    }

    #[test]
    fn stateful_tags_bind_tweak(
        key in any::<[u8; 16]>(),
        msg in any::<[u8; 32]>(),
        a in any::<(u64, u64)>(),
        b in any::<(u64, u64)>(),
    ) {
        prop_assume!(a != b);
        let cmac = Cmac::new(key);
        prop_assert_ne!(
            cmac.stateful_tag64(&msg, Tweak::new(a.0, a.1)),
            cmac.stateful_tag64(&msg, Tweak::new(b.0, b.1))
        );
    }
}
