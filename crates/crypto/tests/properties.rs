//! Property-style tests for the crypto substrate, driven by seeded
//! random sampling (the build resolves no external crates, so these
//! loops stand in for proptest).

use plutus_crypto::{Aes128, Cmac, CounterMode, Tweak, Xts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 64;

#[test]
fn aes_roundtrips() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let aes = Aes128::new(rng.gen());
        let block: [u8; 16] = rng.gen();
        assert_eq!(aes.decrypt(aes.encrypt(block)), block);
    }
}

#[test]
fn aes_is_injective_per_key() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let aes = Aes128::new(rng.gen());
        let a: [u8; 16] = rng.gen();
        let b: [u8; 16] = rng.gen();
        if a != b {
            assert_ne!(aes.encrypt(a), aes.encrypt(b));
        }
    }
}

#[test]
fn xts_roundtrips_any_sector() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let xts = Xts::new(rng.gen(), rng.gen());
        let data: [u8; 32] = rng.gen();
        let (addr, ctr) = (rng.gen::<u64>(), rng.gen::<u64>());
        let mut buf = data;
        xts.encrypt_sector(&mut buf, Tweak::new(addr, ctr));
        assert_ne!(buf, data);
        xts.decrypt_sector(&mut buf, Tweak::new(addr, ctr));
        assert_eq!(buf, data);
    }
}

#[test]
fn xts_tamper_diffuses_at_least_a_quarter_of_block_bits() {
    // The malleability-resistance property behind Plutus idea ①:
    // flipping any ciphertext bit randomizes its 16-byte block.
    let xts = Xts::new([1; 16], [2; 16]);
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: [u8; 32] = rng.gen();
        let (addr, ctr) = (rng.gen::<u64>(), rng.gen::<u64>());
        let byte = rng.gen_range(0usize..16);
        let bit = rng.gen_range(0u8..8);
        let mut ct = data;
        xts.encrypt_sector(&mut ct, Tweak::new(addr, ctr));
        ct[byte] ^= 1 << bit;
        xts.decrypt_sector(&mut ct, Tweak::new(addr, ctr));
        let differing: u32 = ct[..16]
            .iter()
            .zip(data[..16].iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(differing >= 32, "only {differing} bits diffused");
        // The untouched second block decrypts cleanly.
        assert_eq!(&ct[16..], &data[16..]);
    }
}

#[test]
fn cme_roundtrips_and_is_bit_malleable() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let cme = CounterMode::new(rng.gen());
        let data: [u8; 32] = rng.gen();
        // CME tweak addresses are sector bases, ≥32-byte aligned — the
        // index fold's collision-freedom depends on it (enforced in pad).
        let t = Tweak::new(rng.gen::<u64>() & !31, rng.gen::<u64>());
        let byte = rng.gen_range(0usize..32);
        let bit = rng.gen_range(0u8..8);
        let mut ct = data;
        cme.apply(&mut ct, t);
        // Flip one ciphertext bit → exactly that plaintext bit flips.
        ct[byte] ^= 1 << bit;
        cme.apply(&mut ct, t);
        let mut expected = data;
        expected[byte] ^= 1 << bit;
        assert_eq!(ct, expected);
    }
}

#[test]
fn cmac_tags_differ_for_different_messages() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmac = Cmac::new(rng.gen());
        let mut a = vec![0u8; rng.gen_range(0usize..80)];
        let mut b = vec![0u8; rng.gen_range(0usize..80)];
        rng.fill(&mut a);
        rng.fill(&mut b);
        if a != b {
            assert_ne!(cmac.mac(&a), cmac.mac(&b));
        }
    }
}

#[test]
fn cmac_truncation_is_prefix() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmac = Cmac::new(rng.gen());
        let mut msg = vec![0u8; rng.gen_range(0usize..64)];
        rng.fill(&mut msg);
        let len = rng.gen_range(1usize..=16);
        let full = cmac.mac(&msg);
        assert_eq!(cmac.tag(&msg, len), full[..len].to_vec());
    }
}

#[test]
fn stateful_tags_bind_tweak() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmac = Cmac::new(rng.gen());
        let msg: [u8; 32] = rng.gen();
        let a = (rng.gen::<u64>(), rng.gen::<u64>());
        let b = (rng.gen::<u64>(), rng.gen::<u64>());
        if a != b {
            assert_ne!(
                cmac.stateful_tag64(&msg, Tweak::new(a.0, a.1)),
                cmac.stateful_tag64(&msg, Tweak::new(b.0, b.1))
            );
        }
    }
}
