//! Data-value generators controlling the *value locality* of synthetic
//! workloads — the property Plutus's value-based verification exploits
//! (paper Section III-B).

use rand::rngs::StdRng;
use rand::Rng;

/// How 32-bit data words are drawn for a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueProfile {
    /// Small integers (node ids, distances, histogram counts, labels):
    /// values repeat heavily — the high-reuse regime of graph workloads.
    SmallInts {
        /// Exclusive upper bound on generated values.
        max: u32,
    },
    /// Float-like values clustered around a few centers, with noise
    /// confined to the low bits: exact matching misses, but the 28-bit
    /// masked matching Plutus uses still hits (grid/temperature data).
    ClusteredFloats {
        /// Number of cluster centers.
        centers: u32,
        /// Noise magnitude (kept within the masked low bits when ≤ 15).
        spread: u32,
    },
    /// Uniformly random words: essentially no value locality (hash tables,
    /// compressed/encrypted payloads).
    WideRandom,
    /// A mix: `small_permille`/1000 of words are small integers, the rest
    /// random (structures mixing indices with payloads).
    Mixed {
        /// Parts-per-thousand of words drawn as small integers.
        small_permille: u32,
        /// Exclusive upper bound for the small-integer part.
        max: u32,
    },
}

impl ValueProfile {
    /// Samples one 32-bit word.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            ValueProfile::SmallInts { max } => rng.gen_range(0..max.max(1)),
            ValueProfile::ClusteredFloats { centers, spread } => {
                let center = rng.gen_range(0..centers.max(1));
                // Deterministic center value spread across the 32-bit space,
                // plus low-bit noise.
                let base = center.wrapping_mul(0x9e37_79b9) & !0xf;
                base.wrapping_add(rng.gen_range(0..=spread))
            }
            ValueProfile::WideRandom => rng.gen(),
            ValueProfile::Mixed {
                small_permille,
                max,
            } => {
                if rng.gen_range(0..1000) < small_permille {
                    rng.gen_range(0..max.max(1))
                } else {
                    rng.gen()
                }
            }
        }
    }

    /// Fills a 32-byte sector with eight sampled words.
    pub fn fill_sector(&self, rng: &mut StdRng) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..8 {
            out[4 * i..4 * i + 4].copy_from_slice(&self.sample(rng).to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn small_ints_repeat_heavily() {
        let mut r = rng();
        let p = ValueProfile::SmallInts { max: 64 };
        let distinct: HashSet<u32> = (0..1000).map(|_| p.sample(&mut r)).collect();
        assert!(distinct.len() <= 64);
    }

    #[test]
    fn clustered_floats_match_after_masking() {
        let mut r = rng();
        let p = ValueProfile::ClusteredFloats {
            centers: 8,
            spread: 15,
        };
        let masked: HashSet<u32> = (0..1000).map(|_| p.sample(&mut r) >> 4).collect();
        assert!(masked.len() <= 8, "masked keys {} > centers", masked.len());
        let exact: HashSet<u32> = (0..1000).map(|_| p.sample(&mut r)).collect();
        assert!(exact.len() > 8, "noise must defeat exact matching");
    }

    #[test]
    fn wide_random_rarely_repeats() {
        let mut r = rng();
        let p = ValueProfile::WideRandom;
        let distinct: HashSet<u32> = (0..1000).map(|_| p.sample(&mut r)).collect();
        assert!(distinct.len() > 990);
    }

    #[test]
    fn mixed_profile_blends() {
        let mut r = rng();
        let p = ValueProfile::Mixed {
            small_permille: 500,
            max: 16,
        };
        let small = (0..2000).filter(|_| p.sample(&mut r) < 16).count();
        assert!(small > 800 && small < 1300, "small fraction {small}/2000");
    }

    #[test]
    fn fill_sector_has_eight_words() {
        let mut r = rng();
        let s = ValueProfile::SmallInts { max: 4 }.fill_sector(&mut r);
        for chunk in s.chunks_exact(4) {
            assert!(u32::from_le_bytes(chunk.try_into().unwrap()) < 4);
        }
    }
}
