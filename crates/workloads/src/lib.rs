//! Synthetic GPU workload suite for the Plutus (HPCA 2023) reproduction.
//!
//! The paper evaluates on Rodinia-3.1, Parboil, LonestarGPU-2.0 and
//! Pannotia binaries running under GPGPU-Sim. Neither those binaries nor
//! their PTX traces are available here, so this crate generates traces that
//! reproduce the workload *characteristics* the paper's results depend on:
//!
//! - **access structure** ([`generators::Pattern`]): coalesced streaming
//!   sweeps, CSR graph traversals, tiled GEMM, random read-modify-write,
//!   hot-table clustering;
//! - **read/write mix** (paper Fig. 10): from read-only to 50% writes;
//! - **memory intensity** (think cycles / arithmetic per access);
//! - **data-value locality** ([`values::ValueProfile`], paper Fig. 9):
//!   small-integer graph data, cluster-structured floats, uniform noise.
//!
//! # Example
//!
//! ```
//! use workloads::{by_name, Scale};
//!
//! let trace = by_name("bfs").unwrap().trace(Scale::Test);
//! assert!(!trace.is_empty());
//! println!("bfs: {} accesses, {:.0}% writes", trace.len(), trace.write_fraction() * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod spec;
pub mod stats;
pub mod tenancy;
pub mod values;

pub use generators::{generate, GenParams, Pattern};
pub use spec::{by_name, suite, Intensity, Scale, ScaleKnobs, Suite, WorkloadSpec};
pub use stats::{characterize, value_census, TraceStats, ValueCensus};
pub use tenancy::{multi_tenant_trace, overflow_storm_trace, SLAB_ALIGN};
pub use values::ValueProfile;
