//! The named benchmark suite: synthetic stand-ins for the Rodinia-3.1,
//! Parboil, LonestarGPU-2.0 and Pannotia workloads the paper evaluates.
//!
//! Each spec documents and reproduces the *characteristics* that drive the
//! paper's results — access regularity, read/write mix (Fig. 10), memory
//! intensity, and data-value locality (Fig. 9) — rather than emulating the
//! kernels instruction-by-instruction (see DESIGN.md, "Substitutions").

use crate::generators::{generate, GenParams, Pattern};
use crate::values::ValueProfile;
use gpu_sim::Trace;

/// Source suite of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// Rodinia-3.1.
    Rodinia,
    /// Parboil.
    Parboil,
    /// LonestarGPU-2.0.
    Lonestar,
    /// Pannotia.
    Pannotia,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::Rodinia => "rodinia",
            Suite::Parboil => "parboil",
            Suite::Lonestar => "lonestar",
            Suite::Pannotia => "pannotia",
        };
        f.write_str(s)
    }
}

/// Memory-bandwidth intensity class (paper: >50% high, >20% medium).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intensity {
    /// Uses more than half the available bandwidth.
    High,
    /// Uses 20–50% of the available bandwidth.
    Medium,
}

/// Trace size/footprint scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit tests: 256 KiB footprint, 6 k accesses.
    Test,
    /// Quick experiments: 64 MiB footprint, 300 k accesses.
    Small,
    /// Paper-style runs: 256 MiB footprint, 2 M accesses.
    Paper,
}

/// Multiplicative trace-size knobs layered on a base [`Scale`]:
/// `length_mul` multiplies the access count (trace length) and
/// `footprint_mul` the sector footprint. Longer traces push a run past
/// the warp-pool launch ramp into the bandwidth-bound steady state the
/// paper's figures measure; a larger footprint defeats L2 reuse so the
/// extra accesses still reach DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleKnobs {
    /// Multiplier on the base scale's access count (≥ 1).
    pub length_mul: u32,
    /// Multiplier on the base scale's footprint (≥ 1).
    pub footprint_mul: u32,
}

impl Default for ScaleKnobs {
    fn default() -> Self {
        Self {
            length_mul: 1,
            footprint_mul: 1,
        }
    }
}

impl Scale {
    fn footprint_sectors(self) -> u64 {
        // Far larger than the 6 MiB L2 (except at test scale), as the
        // paper's memory-intensive workloads are.
        match self {
            Scale::Test => 8 * 1024,         // 256 KiB (vs the 64 KiB test-config L2)
            Scale::Small => 2 * 1024 * 1024, // 64 MiB
            Scale::Paper => 8 * 1024 * 1024, // 256 MiB
        }
    }

    fn accesses(self) -> usize {
        match self {
            Scale::Test => 6_000,
            Scale::Small => 300_000,
            Scale::Paper => 2_000_000,
        }
    }
}

/// One synthetic benchmark.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Benchmark name (matches the paper's figures).
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Bandwidth-intensity class.
    pub intensity: Intensity,
    /// Structural access pattern.
    pub pattern: Pattern,
    /// Value profile of the input data.
    pub read_values: ValueProfile,
    /// Value profile of kernel writes.
    pub write_values: ValueProfile,
}

impl WorkloadSpec {
    /// Generates this benchmark's trace at the given scale.
    pub fn trace(&self, scale: Scale) -> Trace {
        self.trace_seeded(scale, fxhash(self.name))
    }

    /// Generates with an explicit seed (for sensitivity studies).
    pub fn trace_seeded(&self, scale: Scale, seed: u64) -> Trace {
        self.trace_knobbed_seeded(scale, ScaleKnobs::default(), seed)
    }

    /// Generates at `scale` stretched by [`ScaleKnobs`] (length ×
    /// footprint multipliers).
    pub fn trace_knobbed(&self, scale: Scale, knobs: ScaleKnobs) -> Trace {
        self.trace_knobbed_seeded(scale, knobs, fxhash(self.name))
    }

    /// [`Self::trace_knobbed`] with an explicit seed.
    pub fn trace_knobbed_seeded(&self, scale: Scale, knobs: ScaleKnobs, seed: u64) -> Trace {
        let think = match self.intensity {
            Intensity::High => (2, 10),
            Intensity::Medium => (20, 48),
        };
        let instructions = match self.intensity {
            Intensity::High => 12,
            Intensity::Medium => 30,
        };
        generate(
            self.name,
            self.pattern,
            GenParams {
                footprint_sectors: scale.footprint_sectors() * knobs.footprint_mul.max(1) as u64,
                accesses: scale.accesses() * knobs.length_mul.max(1) as usize,
                think_cycles: think,
                instructions,
                seed,
            },
            self.read_values,
            self.write_values,
        )
    }
}

/// Deterministic name hash for per-benchmark seeds.
fn fxhash(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// The full benchmark suite (19 workloads across the four paper suites).
pub fn suite() -> Vec<WorkloadSpec> {
    use Intensity::*;
    use Suite::*;
    vec![
        WorkloadSpec {
            name: "bfs",
            suite: Rodinia,
            intensity: High,
            pattern: Pattern::Graph {
                degree: 3,
                write_permille: 550,
            },
            read_values: ValueProfile::SmallInts { max: 1 << 10 },
            write_values: ValueProfile::SmallInts { max: 64 },
        },
        WorkloadSpec {
            name: "backprop",
            suite: Rodinia,
            intensity: High,
            pattern: Pattern::Stencil {
                read_arrays: 2,
                write_period: 2,
                passes: 8,
            },
            read_values: ValueProfile::ClusteredFloats {
                centers: 64,
                spread: 15,
            },
            write_values: ValueProfile::ClusteredFloats {
                centers: 64,
                spread: 15,
            },
        },
        WorkloadSpec {
            name: "hotspot",
            suite: Rodinia,
            intensity: High,
            pattern: Pattern::Stencil {
                read_arrays: 2,
                write_period: 4,
                passes: 8,
            },
            read_values: ValueProfile::ClusteredFloats {
                centers: 32,
                spread: 15,
            },
            write_values: ValueProfile::ClusteredFloats {
                centers: 32,
                spread: 15,
            },
        },
        WorkloadSpec {
            name: "srad",
            suite: Rodinia,
            intensity: High,
            pattern: Pattern::Stencil {
                read_arrays: 3,
                write_period: 4,
                passes: 6,
            },
            read_values: ValueProfile::ClusteredFloats {
                centers: 48,
                spread: 15,
            },
            write_values: ValueProfile::ClusteredFloats {
                centers: 48,
                spread: 15,
            },
        },
        WorkloadSpec {
            name: "pathfinder",
            suite: Rodinia,
            intensity: High,
            pattern: Pattern::Stencil {
                read_arrays: 1,
                write_period: 8,
                passes: 10,
            },
            read_values: ValueProfile::SmallInts { max: 4096 },
            write_values: ValueProfile::SmallInts { max: 4096 },
        },
        WorkloadSpec {
            name: "btree",
            suite: Rodinia,
            intensity: Medium,
            pattern: Pattern::Graph {
                degree: 2,
                write_permille: 30,
            },
            read_values: ValueProfile::Mixed {
                small_permille: 600,
                max: 1 << 16,
            },
            write_values: ValueProfile::Mixed {
                small_permille: 600,
                max: 1 << 16,
            },
        },
        WorkloadSpec {
            name: "kmeans",
            suite: Rodinia,
            intensity: Medium,
            pattern: Pattern::Cluster {
                hot_sectors: 64,
                write_permille: 80,
            },
            read_values: ValueProfile::ClusteredFloats {
                centers: 96,
                spread: 15,
            },
            write_values: ValueProfile::SmallInts { max: 32 },
        },
        WorkloadSpec {
            name: "streamcluster",
            suite: Rodinia,
            intensity: High,
            pattern: Pattern::Cluster {
                hot_sectors: 128,
                write_permille: 30,
            },
            read_values: ValueProfile::ClusteredFloats {
                centers: 80,
                spread: 15,
            },
            write_values: ValueProfile::SmallInts { max: 128 },
        },
        WorkloadSpec {
            name: "spmv",
            suite: Parboil,
            intensity: High,
            pattern: Pattern::Graph {
                degree: 4,
                write_permille: 300,
            },
            read_values: ValueProfile::Mixed {
                small_permille: 700,
                max: 1 << 14,
            },
            write_values: ValueProfile::ClusteredFloats {
                centers: 128,
                spread: 15,
            },
        },
        WorkloadSpec {
            name: "stencil",
            suite: Parboil,
            intensity: High,
            pattern: Pattern::Stencil {
                read_arrays: 1,
                write_period: 4,
                passes: 8,
            },
            read_values: ValueProfile::ClusteredFloats {
                centers: 40,
                spread: 15,
            },
            write_values: ValueProfile::ClusteredFloats {
                centers: 40,
                spread: 15,
            },
        },
        WorkloadSpec {
            name: "sgemm",
            suite: Parboil,
            intensity: Medium,
            pattern: Pattern::Gemm { tile: 16 },
            read_values: ValueProfile::ClusteredFloats {
                centers: 64,
                spread: 15,
            },
            write_values: ValueProfile::WideRandom,
        },
        WorkloadSpec {
            name: "lbm",
            suite: Parboil,
            intensity: High,
            pattern: Pattern::Stencil {
                read_arrays: 2,
                write_period: 2,
                passes: 6,
            },
            read_values: ValueProfile::WideRandom,
            write_values: ValueProfile::WideRandom,
        },
        WorkloadSpec {
            name: "histo",
            suite: Parboil,
            intensity: High,
            pattern: Pattern::RandomRmw,
            read_values: ValueProfile::SmallInts { max: 256 },
            write_values: ValueProfile::SmallInts { max: 256 },
        },
        WorkloadSpec {
            name: "mriq",
            suite: Parboil,
            intensity: Medium,
            pattern: Pattern::Stencil {
                read_arrays: 2,
                write_period: u32::MAX,
                passes: 4,
            },
            read_values: ValueProfile::ClusteredFloats {
                centers: 72,
                spread: 15,
            },
            write_values: ValueProfile::WideRandom,
        },
        WorkloadSpec {
            name: "mst",
            suite: Lonestar,
            intensity: High,
            pattern: Pattern::Graph {
                degree: 3,
                write_permille: 350,
            },
            read_values: ValueProfile::Mixed {
                small_permille: 800,
                max: 1 << 12,
            },
            write_values: ValueProfile::SmallInts { max: 1 << 12 },
        },
        WorkloadSpec {
            name: "sssp",
            suite: Lonestar,
            intensity: High,
            pattern: Pattern::Graph {
                degree: 4,
                write_permille: 700,
            },
            read_values: ValueProfile::SmallInts { max: 1 << 16 },
            write_values: ValueProfile::SmallInts { max: 1 << 16 },
        },
        WorkloadSpec {
            name: "pagerank",
            suite: Pannotia,
            intensity: High,
            pattern: Pattern::Graph {
                degree: 5,
                write_permille: 900,
            },
            read_values: ValueProfile::ClusteredFloats {
                centers: 128,
                spread: 15,
            },
            write_values: ValueProfile::ClusteredFloats {
                centers: 128,
                spread: 15,
            },
        },
        WorkloadSpec {
            name: "color",
            suite: Pannotia,
            intensity: High,
            pattern: Pattern::Graph {
                degree: 3,
                write_permille: 600,
            },
            read_values: ValueProfile::SmallInts { max: 64 },
            write_values: ValueProfile::SmallInts { max: 64 },
        },
        WorkloadSpec {
            name: "mis",
            suite: Pannotia,
            intensity: High,
            pattern: Pattern::Graph {
                degree: 3,
                write_permille: 500,
            },
            read_values: ValueProfile::SmallInts { max: 8 },
            write_values: ValueProfile::SmallInts { max: 8 },
        },
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_four_sources() {
        let s = suite();
        assert!(s.len() >= 16);
        for src in [
            Suite::Rodinia,
            Suite::Parboil,
            Suite::Lonestar,
            Suite::Pannotia,
        ] {
            assert!(s.iter().any(|w| w.suite == src), "missing suite {src}");
        }
    }

    #[test]
    fn scale_knobs_stretch_length_and_footprint() {
        let w = by_name("bfs").unwrap();
        let base = w.trace(Scale::Test);
        let knobbed = w.trace_knobbed(
            Scale::Test,
            ScaleKnobs {
                length_mul: 4,
                footprint_mul: 2,
            },
        );
        assert_eq!(knobbed.len(), 4 * base.len(), "length_mul scales accesses");
        let footprint = |t: &Trace| {
            let mut sectors: Vec<u64> = t.accesses.iter().map(|a| a.addr.raw()).collect();
            sectors.sort_unstable();
            sectors.dedup();
            sectors.len()
        };
        assert!(
            footprint(&knobbed) > footprint(&base),
            "footprint_mul must widen the touched sector set"
        );
        // Knobs at 1/1 are the identity.
        let id = w.trace_knobbed(Scale::Test, ScaleKnobs::default());
        assert_eq!(id.len(), base.len());
    }

    #[test]
    fn names_are_unique() {
        let s = suite();
        let mut names: Vec<_> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn every_workload_generates_at_test_scale() {
        for w in suite() {
            let t = w.trace(Scale::Test);
            assert!(!t.is_empty(), "{} generated empty trace", w.name);
            assert!(t.len() <= Scale::Test.accesses());
            assert!(!t.initial_image.is_empty());
        }
    }

    #[test]
    fn write_mix_spans_the_fig10_range() {
        // Fig. 10: the suite spans read-only-ish to write-heavy.
        let fracs: Vec<f64> = suite()
            .iter()
            .map(|w| w.trace(Scale::Test).write_fraction())
            .collect();
        assert!(
            fracs.iter().any(|&f| f < 0.08),
            "need read-dominated workloads"
        );
        assert!(fracs.iter().any(|&f| f > 0.3), "need write-heavy workloads");
    }

    #[test]
    fn by_name_roundtrip() {
        assert_eq!(by_name("bfs").unwrap().name, "bfs");
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn traces_are_deterministic_per_name() {
        let a = by_name("sssp").unwrap().trace(Scale::Test);
        let b = by_name("sssp").unwrap().trace(Scale::Test);
        assert_eq!(a.accesses, b.accesses);
    }
}
