//! Trace characterization: the workload properties that determine how a
//! security scheme behaves (footprint, request mix, spatial locality,
//! reuse), computed directly from a generated trace.
//!
//! Used by the `experiments workloads` report and by tests that pin each
//! synthetic benchmark to the behavior class of its namesake.

use gpu_sim::{AccessKind, Trace, SECTOR_SIZE};
use std::collections::{HashMap, HashSet};

/// Summary statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total accesses.
    pub accesses: usize,
    /// Write fraction (paper Fig. 10).
    pub write_fraction: f64,
    /// Distinct sectors touched.
    pub unique_sectors: usize,
    /// Touched footprint in bytes.
    pub footprint_bytes: u64,
    /// Fraction of accesses whose sector is ±1 sector from the previous
    /// access (coalesced/streaming behavior).
    pub sequential_fraction: f64,
    /// Fraction of accesses to the hottest 10% of touched sectors
    /// (temporal concentration; 0.1 = uniform).
    pub hot_tenth_fraction: f64,
    /// Mean reuse count per touched sector.
    pub mean_reuse: f64,
}

/// Computes [`TraceStats`] for a trace.
pub fn characterize(trace: &Trace) -> TraceStats {
    let n = trace.accesses.len();
    if n == 0 {
        return TraceStats {
            accesses: 0,
            write_fraction: 0.0,
            unique_sectors: 0,
            footprint_bytes: 0,
            sequential_fraction: 0.0,
            hot_tenth_fraction: 0.0,
            mean_reuse: 0.0,
        };
    }
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut writes = 0usize;
    let mut sequential = 0usize;
    let mut prev: Option<u64> = None;
    for a in &trace.accesses {
        let idx = a.addr.index();
        *counts.entry(idx).or_insert(0) += 1;
        if a.kind == AccessKind::Write {
            writes += 1;
        }
        if let Some(p) = prev {
            if idx.abs_diff(p) <= 1 {
                sequential += 1;
            }
        }
        prev = Some(idx);
    }
    let unique = counts.len();
    let mut by_count: Vec<u64> = counts.values().copied().collect();
    by_count.sort_unstable_by(|a, b| b.cmp(a));
    let hot_n = (unique / 10).max(1);
    let hot_hits: u64 = by_count.iter().take(hot_n).sum();

    TraceStats {
        accesses: n,
        write_fraction: writes as f64 / n as f64,
        unique_sectors: unique,
        footprint_bytes: unique as u64 * SECTOR_SIZE,
        sequential_fraction: sequential as f64 / n as f64,
        hot_tenth_fraction: hot_hits as f64 / n as f64,
        mean_reuse: n as f64 / unique as f64,
    }
}

/// Distinct-value census of a trace's data (initial image + writes) at
/// 32-bit granularity — the supply side of the paper's Fig. 8 value-
/// locality study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueCensus {
    /// Total 32-bit words examined.
    pub words: u64,
    /// Distinct exact 32-bit values.
    pub distinct_exact: u64,
    /// Distinct values after masking the low 4 bits.
    pub distinct_masked: u64,
}

impl ValueCensus {
    /// Mean occurrences per distinct exact value.
    pub fn exact_reuse(&self) -> f64 {
        if self.distinct_exact == 0 {
            0.0
        } else {
            self.words as f64 / self.distinct_exact as f64
        }
    }
}

/// Counts distinct data values in the trace's initial image and writes.
pub fn value_census(trace: &Trace) -> ValueCensus {
    let mut exact: HashSet<u32> = HashSet::new();
    let mut masked: HashSet<u32> = HashSet::new();
    let mut words = 0u64;
    let mut scan = |sector: &[u8; 32]| {
        for chunk in sector.chunks_exact(4) {
            let v = u32::from_le_bytes(chunk.try_into().unwrap());
            exact.insert(v);
            masked.insert(v >> 4);
        }
    };
    for (_, data) in &trace.initial_image {
        scan(data);
        words += 8;
    }
    for data in &trace.write_data {
        scan(data);
        words += 8;
    }
    ValueCensus {
        words,
        distinct_exact: exact.len() as u64,
        distinct_masked: masked.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by_name, Scale};
    use gpu_sim::SectorAddr;

    #[test]
    fn empty_trace_is_all_zero() {
        let s = characterize(&Trace::new("empty"));
        assert_eq!(s.accesses, 0);
        assert_eq!(s.unique_sectors, 0);
    }

    #[test]
    fn sequential_trace_measures_sequential() {
        let mut t = Trace::new("seq");
        for i in 0..100 {
            t.push_read(SectorAddr::new(i * 32), 0, 1);
        }
        let s = characterize(&t);
        assert!(s.sequential_fraction > 0.98);
        assert_eq!(s.unique_sectors, 100);
        assert!((s.mean_reuse - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stencil_is_more_sequential_than_graph() {
        let stencil = characterize(&by_name("stencil").unwrap().trace(Scale::Test));
        let graph = characterize(&by_name("bfs").unwrap().trace(Scale::Test));
        assert!(
            stencil.sequential_fraction > graph.sequential_fraction,
            "stencil {} vs bfs {}",
            stencil.sequential_fraction,
            graph.sequential_fraction
        );
    }

    #[test]
    fn graph_traces_concentrate_on_hubs() {
        let s = characterize(&by_name("pagerank").unwrap().trace(Scale::Test));
        assert!(
            s.hot_tenth_fraction > 0.15,
            "hub skew missing: {}",
            s.hot_tenth_fraction
        );
    }

    #[test]
    fn histo_is_half_writes() {
        let s = characterize(&by_name("histo").unwrap().trace(Scale::Test));
        assert!((s.write_fraction - 0.5).abs() < 0.02);
    }

    #[test]
    fn value_census_separates_locality_classes() {
        let hot = value_census(&by_name("mis").unwrap().trace(Scale::Test)); // SmallInts{8}
        let cold = value_census(&by_name("lbm").unwrap().trace(Scale::Test)); // WideRandom
        assert!(hot.exact_reuse() > 100.0, "mis reuse {}", hot.exact_reuse());
        assert!(cold.exact_reuse() < 2.0, "lbm reuse {}", cold.exact_reuse());
        assert!(hot.distinct_masked <= hot.distinct_exact);
    }

    #[test]
    fn clustered_floats_collapse_under_masking() {
        let c = value_census(&by_name("hotspot").unwrap().trace(Scale::Test));
        assert!(
            (c.distinct_masked as f64) < c.distinct_exact as f64 / 4.0,
            "masking should collapse clustered floats: {} vs {}",
            c.distinct_masked,
            c.distinct_exact
        );
    }
}
