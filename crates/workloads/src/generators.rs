//! Access-pattern generators: the structural skeletons of the synthetic
//! benchmarks (graph traversal, stencil sweeps, tiled GEMM, random
//! read-modify-write, point clustering, streaming).
//!
//! Each generator emits a [`Trace`] whose *ordering* is GPU-like: the
//! simulator's warp pool round-robins over the stream, so consecutive trace
//! entries execute concurrently — a sequential address run therefore models
//! a coalesced parallel sweep.

use crate::values::ValueProfile;
use gpu_sim::{SectorAddr, Trace, SECTOR_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Common generator knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Data footprint in sectors.
    pub footprint_sectors: u64,
    /// Total accesses to emit.
    pub accesses: usize,
    /// Warp compute cycles between accesses: uniform in `[min, max]`.
    pub think_cycles: (u32, u32),
    /// Instructions retired per access (arithmetic intensity for IPC).
    pub instructions: u32,
    /// RNG seed.
    pub seed: u64,
}

impl GenParams {
    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    fn think(&self, rng: &mut StdRng) -> u32 {
        if self.think_cycles.0 >= self.think_cycles.1 {
            self.think_cycles.0
        } else {
            rng.gen_range(self.think_cycles.0..=self.think_cycles.1)
        }
    }
}

fn sector(i: u64) -> SectorAddr {
    SectorAddr::new(i * SECTOR_SIZE)
}

/// The structural pattern of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Sequential array sweeps: read `read_arrays` input arrays, write one
    /// output array every `write_period`-th access group (stencils, LBM,
    /// pathfinding — the structured-grid Rodinia/Parboil kernels).
    Stencil {
        /// Input arrays streamed per pass.
        read_arrays: u32,
        /// One write per this many reads (u32::MAX = read-only).
        write_period: u32,
        /// Full sweeps over the footprint.
        passes: u32,
    },
    /// CSR graph traversal: row-pointer reads (sequential-ish), edge-list
    /// reads, random neighbor-data gathers, sparse relaxation writes
    /// (BFS/SSSP/PageRank/coloring/SpMV — the irregular suites).
    Graph {
        /// Average neighbors gathered per visited node.
        degree: u32,
        /// Permille of visits that write the node's data back.
        write_permille: u32,
    },
    /// Tiled dense matrix multiply: A/B tile reads with strong L2 reuse,
    /// one C write per tile element pass (SGEMM).
    Gemm {
        /// Tile side in sectors.
        tile: u32,
    },
    /// Random read-modify-write over a table (histogramming, hash builds).
    RandomRmw,
    /// Streamed points against a small hot centroid table, with periodic
    /// small writes (k-means, streamcluster).
    Cluster {
        /// Sectors of hot (centroid) data revisited constantly.
        hot_sectors: u64,
        /// Permille of accesses that write assignments.
        write_permille: u32,
    },
}

/// Builds a trace from a pattern, value profiles, and common knobs.
///
/// `read_values` fills the pre-initialized input data; `write_values`
/// drives the values the kernel writes back.
pub fn generate(
    name: &str,
    pattern: Pattern,
    params: GenParams,
    read_values: ValueProfile,
    write_values: ValueProfile,
) -> Trace {
    let mut rng = params.rng();
    let mut trace = Trace::new(name);
    let fp = params.footprint_sectors.max(16);

    // Pre-initialize the input image (all patterns read real data).
    for i in 0..fp {
        trace.set_initial(sector(i), read_values.fill_sector(&mut rng));
    }

    match pattern {
        Pattern::Stencil {
            read_arrays,
            write_period,
            passes,
        } => {
            let arrays = u64::from(read_arrays).max(1);
            let array_len = fp / (arrays + 1); // last region is the output
            let out_base = arrays * array_len;
            let mut emitted = 0usize;
            'outer: for _pass in 0..passes.max(1) {
                for i in 0..array_len {
                    for a in 0..arrays {
                        if emitted >= params.accesses {
                            break 'outer;
                        }
                        let think = params.think(&mut rng);
                        trace.push_read(sector(a * array_len + i), think, params.instructions);
                        emitted += 1;
                    }
                    if write_period != u32::MAX && i % u64::from(write_period.max(1)) == 0 {
                        if emitted >= params.accesses {
                            break 'outer;
                        }
                        let think = params.think(&mut rng);
                        let data = write_values.fill_sector(&mut rng);
                        trace.push_write(
                            sector(out_base + i % array_len.max(1)),
                            data,
                            think,
                            params.instructions,
                        );
                        emitted += 1;
                    }
                }
            }
        }
        Pattern::Graph {
            degree,
            write_permille,
        } => {
            // Regions: row pointers (1/8), edge lists (5/8), node data (2/8).
            let row_len = fp / 8;
            let edge_len = fp * 5 / 8;
            let data_len = fp - row_len - edge_len;
            let edge_base = row_len;
            let data_base = row_len + edge_len;
            let mut emitted = 0usize;
            let mut node = 0u64;
            while emitted < params.accesses {
                // Frontier scan: row pointer (sequential-ish with jumps).
                node = if rng.gen_range(0..100) < 70 {
                    (node + 1) % row_len.max(1)
                } else {
                    rng.gen_range(0..row_len.max(1))
                };
                trace.push_read(sector(node), params.think(&mut rng), params.instructions);
                emitted += 1;
                // Edge list for this node: 1–2 contiguous sectors.
                let estart = rng.gen_range(0..edge_len.max(1));
                trace.push_read(
                    sector(edge_base + estart),
                    params.think(&mut rng),
                    params.instructions,
                );
                emitted += 1;
                // Neighbor gathers: skewed toward hub nodes (power-law
                // degree distributions make a small hot set absorb most
                // edge endpoints), the rest scattered.
                for _ in 0..degree.max(1) {
                    if emitted >= params.accesses {
                        break;
                    }
                    let n = if rng.gen_range(0..100) < 55 {
                        rng.gen_range(0..(data_len / 8).max(1))
                    } else {
                        rng.gen_range(0..data_len.max(1))
                    };
                    trace.push_read(
                        sector(data_base + n),
                        params.think(&mut rng),
                        params.instructions,
                    );
                    emitted += 1;
                }
                // Sparse relaxation write.
                if rng.gen_range(0..1000) < write_permille && emitted < params.accesses {
                    let n = rng.gen_range(0..data_len.max(1));
                    let data = write_values.fill_sector(&mut rng);
                    trace.push_write(
                        sector(data_base + n),
                        data,
                        params.think(&mut rng),
                        params.instructions,
                    );
                    emitted += 1;
                }
            }
        }
        Pattern::Gemm { tile } => {
            let tile = u64::from(tile.max(1));
            let third = fp / 3;
            let (a_base, b_base, c_base) = (0u64, third, 2 * third);
            let mut emitted = 0usize;
            let tiles = (third / tile).max(1);
            'gemm: for ti in 0..tiles {
                for tj in 0..tiles {
                    // Stream a row-tile of A against a column-tile of B.
                    for k in 0..tile {
                        if emitted + 2 >= params.accesses {
                            break 'gemm;
                        }
                        trace.push_read(
                            sector(a_base + (ti * tile + k) % third.max(1)),
                            params.think(&mut rng),
                            params.instructions,
                        );
                        trace.push_read(
                            sector(b_base + (tj * tile + k) % third.max(1)),
                            params.think(&mut rng),
                            params.instructions,
                        );
                        emitted += 2;
                    }
                    let data = write_values.fill_sector(&mut rng);
                    trace.push_write(
                        sector(c_base + (ti * tiles + tj) % third.max(1)),
                        data,
                        params.think(&mut rng),
                        params.instructions,
                    );
                    emitted += 1;
                }
            }
        }
        Pattern::RandomRmw => {
            let mut emitted = 0usize;
            while emitted < params.accesses {
                let i = rng.gen_range(0..fp);
                trace.push_read(sector(i), params.think(&mut rng), params.instructions);
                emitted += 1;
                if emitted < params.accesses {
                    let data = write_values.fill_sector(&mut rng);
                    trace.push_write(sector(i), data, params.think(&mut rng), params.instructions);
                    emitted += 1;
                }
            }
        }
        Pattern::Cluster {
            hot_sectors,
            write_permille,
        } => {
            let hot = hot_sectors.clamp(1, fp / 2);
            let cold_base = hot;
            let cold_len = fp - hot;
            let mut emitted = 0usize;
            let mut cursor = 0u64;
            while emitted < params.accesses {
                // Stream the next point.
                cursor = (cursor + 1) % cold_len.max(1);
                trace.push_read(
                    sector(cold_base + cursor),
                    params.think(&mut rng),
                    params.instructions,
                );
                emitted += 1;
                // Compare against a hot centroid.
                if emitted < params.accesses {
                    let h = rng.gen_range(0..hot);
                    trace.push_read(sector(h), params.think(&mut rng), params.instructions);
                    emitted += 1;
                }
                if rng.gen_range(0..1000) < write_permille && emitted < params.accesses {
                    let data = write_values.fill_sector(&mut rng);
                    trace.push_write(
                        sector(cold_base + cursor),
                        data,
                        params.think(&mut rng),
                        params.instructions,
                    );
                    emitted += 1;
                }
            }
        }
    }
    // Generators emit in small structural groups (e.g. row + edges +
    // gathers) and may overshoot by a few entries; trim to the requested
    // length. Orphaned write payloads are harmless.
    trace.accesses.truncate(params.accesses);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::AccessKind;

    fn params(accesses: usize) -> GenParams {
        GenParams {
            footprint_sectors: 4096,
            accesses,
            think_cycles: (2, 10),
            instructions: 12,
            seed: 7,
        }
    }

    fn ints() -> ValueProfile {
        ValueProfile::SmallInts { max: 100 }
    }

    #[test]
    fn stencil_is_mostly_sequential_reads() {
        let t = generate(
            "stencil",
            Pattern::Stencil {
                read_arrays: 2,
                write_period: 2,
                passes: 4,
            },
            params(5000),
            ints(),
            ints(),
        );
        assert!(t.len() >= 4990 && t.len() <= 5000);
        let wf = t.write_fraction();
        assert!(wf > 0.1 && wf < 0.4, "stencil write fraction {wf}");
    }

    #[test]
    fn read_only_stencil_has_no_writes() {
        let t = generate(
            "ro",
            Pattern::Stencil {
                read_arrays: 3,
                write_period: u32::MAX,
                passes: 2,
            },
            params(3000),
            ints(),
            ints(),
        );
        assert_eq!(t.write_fraction(), 0.0);
    }

    #[test]
    fn graph_writes_are_sparse() {
        let t = generate(
            "bfs",
            Pattern::Graph {
                degree: 3,
                write_permille: 150,
            },
            params(5000),
            ints(),
            ints(),
        );
        let wf = t.write_fraction();
        assert!(wf < 0.1, "graph write fraction {wf}");
        // Irregular: many distinct sectors touched.
        let distinct: std::collections::HashSet<u64> =
            t.accesses.iter().map(|a| a.addr.raw()).collect();
        assert!(distinct.len() > 1000);
    }

    #[test]
    fn random_rmw_is_half_writes() {
        let t = generate("histo", Pattern::RandomRmw, params(4000), ints(), ints());
        let wf = t.write_fraction();
        assert!((wf - 0.5).abs() < 0.02, "rmw write fraction {wf}");
        // Read/write pairs hit the same address.
        for pair in t.accesses.chunks_exact(2) {
            assert_eq!(pair[0].addr, pair[1].addr);
            assert_eq!(pair[0].kind, AccessKind::Read);
            assert_eq!(pair[1].kind, AccessKind::Write);
        }
    }

    #[test]
    fn cluster_concentrates_on_hot_sectors() {
        let t = generate(
            "kmeans",
            Pattern::Cluster {
                hot_sectors: 16,
                write_permille: 100,
            },
            params(4000),
            ints(),
            ints(),
        );
        let hot_hits = t
            .accesses
            .iter()
            .filter(|a| a.addr.raw() < 16 * SECTOR_SIZE)
            .count();
        assert!(
            hot_hits as f64 > t.len() as f64 * 0.3,
            "hot hits {hot_hits}/{}",
            t.len()
        );
    }

    #[test]
    fn gemm_reuses_tiles() {
        let t = generate(
            "sgemm",
            Pattern::Gemm { tile: 8 },
            params(4000),
            ints(),
            ints(),
        );
        assert!(t.write_fraction() < 0.15);
        assert!(t.len() >= 3900);
    }

    #[test]
    fn generation_is_deterministic() {
        let mk = || {
            generate(
                "det",
                Pattern::Graph {
                    degree: 4,
                    write_permille: 100,
                },
                params(2000),
                ints(),
                ValueProfile::WideRandom,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.accesses.len(), b.accesses.len());
        assert_eq!(a.accesses[100], b.accesses[100]);
        assert_eq!(a.write_data, b.write_data);
    }

    #[test]
    fn traces_fit_their_footprint() {
        let p = params(3000);
        for pattern in [
            Pattern::Stencil {
                read_arrays: 2,
                write_period: 4,
                passes: 2,
            },
            Pattern::Graph {
                degree: 2,
                write_permille: 200,
            },
            Pattern::Gemm { tile: 4 },
            Pattern::RandomRmw,
            Pattern::Cluster {
                hot_sectors: 8,
                write_permille: 50,
            },
        ] {
            let t = generate("fit", pattern, p, ints(), ints());
            let max_addr = t.accesses.iter().map(|a| a.addr.raw()).max().unwrap();
            assert!(
                max_addr < p.footprint_sectors * SECTOR_SIZE,
                "{pattern:?} exceeded footprint: {max_addr:#x}"
            );
        }
    }
}
