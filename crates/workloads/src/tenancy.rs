//! Multi-tenant trace composition and the overflow-storm adversary.
//!
//! The storm/soak campaigns (ISSUE 8) run several tenants concurrently on
//! one GPU: each tenant's workload is generated independently, relocated
//! into a private 4 KiB-aligned address slab, and the per-tenant streams
//! are round-robin interleaved into one trace — modeling spatial
//! multi-tenancy where co-resident kernels share the memory system but
//! never share data.
//!
//! The adversary is [`overflow_storm_trace`]: a write hammer over a tiny
//! sector set with value-locality-free payloads. Every 128 writes to a
//! sector overflow its split-counter group and trigger a whole-group
//! re-encryption — the bandwidth storm the per-tenant backpressure gate
//! (`secure_mem::TenancyConfig::storm_burst`) must contain.

use crate::values::ValueProfile;
use gpu_sim::{AccessKind, SectorAddr, TenantMap, Trace, SECTOR_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tenant slabs must be 4 KiB-aligned so counter groups and metadata
/// fetch units never span two tenants (mirrors
/// `SecureMemConfig::validate`).
pub const SLAB_ALIGN: u64 = 4096;

/// Generates the overflow-forcing adversary: `accesses` writes hammered
/// round-robin over `hammer_sectors` sectors with uniformly random
/// payloads (no value locality, so the pinned-value screen never
/// absorbs them), plus sparse reads over a `probe_sectors`-sized probe
/// region right after the hammer set.
///
/// The hammer set is tiny on purpose — it stays cache-hot, so the storm
/// is pure writeback pressure. The probe region is the opposite: each
/// probe sector is read rarely, gets evicted by co-tenant traffic in
/// between, and is re-*filled* on the next probe — the path where the
/// verifier adjudicates any tampering the adversary aimed at its own
/// slab. With `probe_sectors == 0` the reads fall back onto the hammer
/// set.
///
/// With 128 writes per counter-group overflow, this trace forces about
/// `accesses / 128` group re-encryption storms — the worst case for
/// co-resident tenants.
pub fn overflow_storm_trace(
    name: &str,
    seed: u64,
    hammer_sectors: u64,
    probe_sectors: u64,
    accesses: usize,
) -> Trace {
    let hammer = hammer_sectors.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new(name);
    let payload = ValueProfile::WideRandom;
    for i in 0..hammer + probe_sectors {
        trace.set_initial(
            SectorAddr::new(i * SECTOR_SIZE),
            payload.fill_sector(&mut rng),
        );
    }
    let mut emitted = 0usize;
    let mut cursor = 0u64;
    let mut probe_cursor = 0u64;
    while emitted < accesses {
        // 1-in-4 reads keep fills (and thus the verifier) in play; the
        // rest is the write hammer driving counters toward overflow.
        if rng.gen_range(0..4) == 0 {
            let probe = if probe_sectors > 0 {
                let p = hammer + probe_cursor;
                probe_cursor = (probe_cursor + 1) % probe_sectors;
                p
            } else {
                cursor
            };
            trace.push_read(SectorAddr::new(probe * SECTOR_SIZE), 1, 2);
        } else {
            let addr = SectorAddr::new(cursor * SECTOR_SIZE);
            cursor = (cursor + 1) % hammer;
            trace.push_write(addr, payload.fill_sector(&mut rng), 1, 2);
        }
        emitted += 1;
    }
    trace
}

/// Relocates each `(tenant, trace)` slot into its own `slab_bytes` slab
/// and round-robin interleaves the streams into one trace, returning it
/// with the matching [`TenantMap`].
///
/// Slot `i` (in input order) owns `[i * slab_bytes, (i + 1) * slab_bytes)`;
/// all of a slot's addresses — accesses and initial image — are shifted
/// by its slab base. Interleaving takes one access per non-exhausted
/// slot per round, so tenants progress together regardless of trace
/// length, and the result is deterministic in the input order.
///
/// # Panics
///
/// Panics if `slab_bytes` is not 4 KiB-aligned, a tenant id repeats, or
/// a slot's trace does not fit inside one slab.
pub fn multi_tenant_trace(
    name: &str,
    slots: &[(u32, Trace)],
    slab_bytes: u64,
) -> (Trace, TenantMap) {
    assert!(
        slab_bytes > 0 && slab_bytes.is_multiple_of(SLAB_ALIGN),
        "slab_bytes must be a positive multiple of {SLAB_ALIGN}"
    );
    let mut map = TenantMap::new();
    let mut merged = Trace::new(name);
    for (i, (tenant, trace)) in slots.iter().enumerate() {
        let base = i as u64 * slab_bytes;
        map.add_range(base, base + slab_bytes, *tenant);
        for &(addr, data) in &trace.initial_image {
            assert!(
                addr.raw() + SECTOR_SIZE <= slab_bytes,
                "tenant {tenant} initial image exceeds its {slab_bytes}-byte slab"
            );
            merged.set_initial(SectorAddr::new(base + addr.raw()), data);
        }
    }
    let mut cursors = vec![0usize; slots.len()];
    loop {
        let mut progressed = false;
        for (i, (tenant, trace)) in slots.iter().enumerate() {
            let Some(access) = trace.accesses.get(cursors[i]) else {
                continue;
            };
            cursors[i] += 1;
            progressed = true;
            let base = i as u64 * slab_bytes;
            assert!(
                access.addr.raw() + SECTOR_SIZE <= slab_bytes,
                "tenant {tenant} access exceeds its {slab_bytes}-byte slab"
            );
            let addr = SectorAddr::new(base + access.addr.raw());
            match access.kind {
                AccessKind::Read => {
                    merged.push_read(addr, access.think_cycles, access.instructions)
                }
                AccessKind::Write => merged.push_write(
                    addr,
                    *trace.data_of(access),
                    access.think_cycles,
                    access.instructions,
                ),
            }
        }
        if !progressed {
            break;
        }
    }
    (merged, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate, GenParams, Pattern};

    fn small(seed: u64, accesses: usize) -> Trace {
        generate(
            "victim",
            Pattern::RandomRmw,
            GenParams {
                footprint_sectors: 64,
                accesses,
                think_cycles: (1, 4),
                instructions: 8,
                seed,
            },
            ValueProfile::SmallInts { max: 50 },
            ValueProfile::SmallInts { max: 50 },
        )
    }

    #[test]
    fn storm_trace_is_a_write_hammer() {
        let t = overflow_storm_trace("adv", 3, 4, 16, 2000);
        assert_eq!(t.len(), 2000);
        assert!(t.write_fraction() > 0.7, "wf {}", t.write_fraction());
        // Writes stay inside the hammer set; reads probe the region
        // right after it.
        for a in &t.accesses {
            match a.kind {
                AccessKind::Write => assert!(a.addr.raw() < 4 * SECTOR_SIZE),
                AccessKind::Read => {
                    assert!(a.addr.raw() >= 4 * SECTOR_SIZE);
                    assert!(a.addr.raw() < (4 + 16) * SECTOR_SIZE);
                }
            }
        }
        // Probe sectors are pre-imaged so tampering them has something
        // to corrupt.
        assert!(t.initial_image.len() == 20);
        // Enough writes per sector to overflow 128-write counter groups
        // several times over.
        assert!(t.write_fraction() * 2000.0 / 4.0 > 256.0);
    }

    #[test]
    fn multi_tenant_trace_relocates_and_interleaves() {
        let slots = vec![
            (1u32, small(1, 100)),
            (2u32, small(2, 100)),
            (3u32, small(3, 40)),
        ];
        let (trace, map) = multi_tenant_trace("multi", &slots, 0x10000);
        assert_eq!(trace.len(), 240);
        assert_eq!(map.tenants(), vec![1, 2, 3]);
        assert_eq!(map.range_of(2), Some((0x10000, 0x20000)));
        // Every access lands in its tenant's slab, and the first round
        // is strictly round-robin.
        assert_eq!(map.tenant_of(trace.accesses[0].addr), 1);
        assert_eq!(map.tenant_of(trace.accesses[1].addr), 2);
        assert_eq!(map.tenant_of(trace.accesses[2].addr), 3);
        for a in &trace.accesses {
            assert!(map.tenant_of(a.addr) != TenantMap::DEFAULT_TENANT);
        }
        // Initial images carried over with relocation.
        assert!(trace.initial_image.iter().any(|&(a, _)| a.raw() >= 0x20000));
        // Write payloads survive the merge byte-identically.
        let w = trace
            .accesses
            .iter()
            .find(|a| a.kind == AccessKind::Write)
            .unwrap();
        let orig = slots[0]
            .1
            .accesses
            .iter()
            .find(|a| a.kind == AccessKind::Write)
            .unwrap();
        assert_eq!(trace.data_of(w), slots[0].1.data_of(orig));
    }

    #[test]
    fn multi_tenant_trace_is_deterministic() {
        let mk = || {
            multi_tenant_trace(
                "det",
                &[
                    (1, small(9, 80)),
                    (2, overflow_storm_trace("adv", 5, 4, 8, 80)),
                ],
                0x8000,
            )
        };
        let (a, am) = mk();
        let (b, bm) = mk();
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.write_data, b.write_data);
        assert_eq!(am, bm);
    }

    #[test]
    #[should_panic(expected = "slab")]
    fn oversized_trace_is_rejected() {
        let big = generate(
            "big",
            Pattern::RandomRmw,
            GenParams {
                footprint_sectors: 4096,
                accesses: 50,
                think_cycles: (1, 1),
                instructions: 1,
                seed: 0,
            },
            ValueProfile::WideRandom,
            ValueProfile::WideRandom,
        );
        multi_tenant_trace("bad", &[(1, big)], SLAB_ALIGN);
    }
}
