//! Property tests for the paper's central performance result: in the
//! bandwidth-bound regime security metadata traffic costs cycles, so
//! the normalized-IPC ordering no-security > Plutus > PSSM emerges
//! (Figs. 11-14), and the matrix fan-out that measures it is
//! byte-deterministic for any worker count.

use gpu_sim::{GpuConfig, SimStats, StallBucket};
use plutus_bench::{bench_snapshot, run_trace, try_run_matrix_on, Scheme};
use plutus_exec::Executor;
use workloads::{by_name, Scale, ScaleKnobs};

/// The launch-ramp warm-up boundary the experiments binary uses: warps
/// launch one every other cycle, so the pool is full after warps/2.
fn bandwidth_bound_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::test_small();
    cfg.warmup_cycles = cfg.warps as u64 / 2;
    cfg
}

/// A synthetic workload firmly in the bandwidth-bound regime on the
/// test-small config: the knobbed bfs trace's footprint (32K sectors =
/// 1 MiB) defeats the 64 KiB of L2, and its 48K accesses keep the four
/// DRAM channels' bus queues saturated for the bulk of the run.
fn bandwidth_bound_stats(scheme: Scheme) -> SimStats {
    let w = by_name("bfs").expect("bfs is in the suite");
    let knobs = ScaleKnobs {
        length_mul: 8,
        footprint_mul: 4,
    };
    let trace = w.trace_knobbed(Scale::Test, knobs);
    run_trace(trace, scheme, &bandwidth_bound_cfg()).stats
}

#[test]
fn normalized_ipc_ordering_emerges_when_bandwidth_bound() {
    let none = bandwidth_bound_stats(Scheme::None);
    let plutus = bandwidth_bound_stats(Scheme::Plutus);
    let pssm = bandwidth_bound_stats(Scheme::Pssm);

    // Same trace, same retired work — only the timing may differ.
    assert_eq!(none.accesses, plutus.accesses);
    assert_eq!(none.accesses, pssm.accesses);

    let base = none.steady_ipc();
    assert!(base > 0.0, "baseline must retire work");
    let norm_plutus = plutus.steady_ipc() / base;
    let norm_pssm = pssm.steady_ipc() / base;

    // The paper's ordering, strictly: security is not free, and Plutus's
    // traffic reduction buys back part of PSSM's slowdown.
    assert!(
        norm_plutus < 1.0,
        "Plutus must cost cycles (norm IPC {norm_plutus:.4})"
    );
    assert!(
        norm_pssm < norm_plutus,
        "PSSM moves more metadata than Plutus and must be slower \
         (pssm {norm_pssm:.4} vs plutus {norm_plutus:.4})"
    );

    // The comparison only means something if the run is actually
    // bandwidth-bound and the attribution is trustworthy: PSSM's CPI
    // stack must show metadata transfers and bus-backlog waits, and
    // every ledger must conserve.
    let stack = pssm.cpi_stack();
    let meta_cycles = stack[StallBucket::MetaCounter.idx()]
        + stack[StallBucket::MetaMac.idx()]
        + stack[StallBucket::MetaBmt.idx()];
    assert!(meta_cycles > 0, "PSSM must stall on metadata transfers");
    assert!(
        stack[StallBucket::BusBacklog.idx()] > 0,
        "a bandwidth-bound run must accumulate bus-backlog waits"
    );
    for s in [&none, &plutus, &pssm] {
        assert!(s.ledger_conserved(), "cycle ledger must conserve");
    }
}

#[test]
fn matrix_rows_identical_for_any_worker_count() {
    let workloads = [
        by_name("bfs").expect("bfs is in the suite"),
        by_name("hotspot").expect("hotspot is in the suite"),
    ];
    let schemes = [
        Scheme::None,
        Scheme::Pssm,
        Scheme::CommonCounters,
        Scheme::Plutus,
    ];
    let cfg = bandwidth_bound_cfg();
    let one = try_run_matrix_on(
        &Executor::new(Some(1)),
        &workloads,
        &schemes,
        Scale::Test,
        &cfg,
    )
    .expect("serial matrix must succeed");
    let four = try_run_matrix_on(
        &Executor::new(Some(4)),
        &workloads,
        &schemes,
        Scale::Test,
        &cfg,
    )
    .expect("parallel matrix must succeed");
    assert_eq!(
        bench_snapshot(&one).to_string_pretty(),
        bench_snapshot(&four).to_string_pretty(),
        "matrix snapshot must be byte-identical for --jobs 1 vs --jobs 4"
    );
}
