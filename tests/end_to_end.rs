//! End-to-end integration: full simulator runs across the workload suite
//! and every security scheme, checking completion, cleanliness, and the
//! paper's first-order traffic orderings.

use gpu_sim::GpuConfig;
use plutus_bench::{run_matrix, run_one, Scheme};
use workloads::{by_name, suite, Scale};

fn cfg() -> GpuConfig {
    // The reduced test configuration: its 64 KiB of L2 against the 256 KiB
    // test-scale footprint reproduces the cache pressure of the paper's
    // memory-intensive regime at unit-test cost.
    GpuConfig::test_small()
}

#[test]
fn every_workload_completes_under_every_scheme() {
    let schemes = [
        Scheme::None,
        Scheme::Pssm,
        Scheme::CommonCounters,
        Scheme::All32,
        Scheme::ValueVerifyOnly,
        Scheme::CompactAdaptive,
        Scheme::Plutus,
        Scheme::PlutusNoTree,
    ];
    for w in suite() {
        let trace_len = w.trace(Scale::Test).len() as u64;
        for scheme in schemes {
            let r = run_one(&w, scheme, Scale::Test, &cfg());
            assert_eq!(
                r.stats.accesses, trace_len,
                "{} under {:?} lost accesses",
                w.name, scheme
            );
            assert_eq!(
                r.stats.violations, 0,
                "{} under {:?} raised violations",
                w.name, scheme
            );
            assert!(r.stats.cycles > 0);
        }
    }
}

#[test]
fn security_always_costs_cycles_and_metadata() {
    for name in ["bfs", "histo", "stencil"] {
        let w = by_name(name).unwrap();
        let none = run_one(&w, Scheme::None, Scale::Test, &cfg());
        let pssm = run_one(&w, Scheme::Pssm, Scale::Test, &cfg());
        assert!(
            pssm.stats.cycles > none.stats.cycles,
            "{name}: pssm not slower"
        );
        assert!(pssm.stats.metadata_bytes() > 0);
        assert_eq!(none.stats.metadata_bytes(), 0);
        assert_eq!(
            none.stats.total_bytes(),
            none.stats.class_bytes(gpu_sim::TrafficClass::Data)
        );
    }
}

#[test]
fn plutus_reduces_metadata_traffic_in_aggregate() {
    // Per-workload the ordering can flip for very cache-friendly traces
    // (PSSM's 128 B fetches amortize well when the hot set is tiny), so
    // assert the suite-level reduction plus a loose per-workload bound.
    let mut pssm_total = 0u64;
    let mut plutus_total = 0u64;
    for w in suite() {
        let pssm = run_one(&w, Scheme::Pssm, Scale::Test, &cfg());
        let plutus = run_one(&w, Scheme::Plutus, Scale::Test, &cfg());
        pssm_total += pssm.stats.metadata_bytes();
        plutus_total += plutus.stats.metadata_bytes();
        assert!(
            (plutus.stats.metadata_bytes() as f64)
                < 2.0 * pssm.stats.metadata_bytes().max(1) as f64,
            "{}: plutus {} far above pssm {}",
            w.name,
            plutus.stats.metadata_bytes(),
            pssm.stats.metadata_bytes()
        );
    }
    assert!(
        plutus_total < pssm_total,
        "suite aggregate: plutus {plutus_total} >= pssm {pssm_total}"
    );
}

#[test]
fn value_verification_eliminates_most_mac_traffic() {
    for name in ["bfs", "color", "mis"] {
        let w = by_name(name).unwrap();
        let pssm = run_one(&w, Scheme::Pssm, Scale::Test, &cfg());
        let vv = run_one(&w, Scheme::ValueVerifyOnly, Scale::Test, &cfg());
        let pssm_mac = pssm.stats.class_bytes(gpu_sim::TrafficClass::Mac);
        let vv_mac = vv.stats.class_bytes(gpu_sim::TrafficClass::Mac);
        assert!(
            (vv_mac as f64) < 0.5 * pssm_mac as f64,
            "{name}: MAC bytes {vv_mac} not well below PSSM's {pssm_mac}"
        );
    }
}

#[test]
fn no_tree_mode_removes_tree_traffic_only() {
    let w = by_name("sssp").unwrap();
    let plutus = run_one(&w, Scheme::Plutus, Scale::Test, &cfg());
    let no_tree = run_one(&w, Scheme::PlutusNoTree, Scale::Test, &cfg());
    assert_eq!(no_tree.stats.class_bytes(gpu_sim::TrafficClass::BmtNode), 0);
    assert_eq!(
        no_tree.stats.class_bytes(gpu_sim::TrafficClass::CompactBmt),
        0
    );
    assert!(plutus.stats.class_bytes(gpu_sim::TrafficClass::CompactBmt) > 0);
    // Still encrypted + counter-managed.
    assert!(
        no_tree
            .stats
            .class_bytes(gpu_sim::TrafficClass::CompactCounter)
            > 0
    );
}

#[test]
fn run_matrix_covers_all_cells_deterministically() {
    let ws = [by_name("kmeans").unwrap(), by_name("spmv").unwrap()];
    let schemes = [Scheme::None, Scheme::Pssm, Scheme::Plutus];
    let a = run_matrix(&ws, &schemes, Scale::Test, &cfg());
    let b = run_matrix(&ws, &schemes, Scale::Test, &cfg());
    assert_eq!(a.len(), 6);
    for row in &a {
        let twin = b
            .iter()
            .find(|r| r.workload == row.workload && r.scheme == row.scheme)
            .expect("matching cell");
        assert_eq!(
            row.cycles, twin.cycles,
            "nondeterministic cycles for {}",
            row.workload
        );
        assert_eq!(row.total_bytes, twin.total_bytes);
    }
    for row in a.iter().filter(|r| r.scheme != "no-security") {
        assert!(
            row.norm_ipc <= 1.0 + 1e-9,
            "secure scheme faster than no security?"
        );
    }
}

#[test]
fn flush_at_end_drains_dirty_lines() {
    let w = by_name("histo").unwrap();
    let trace = w.trace(Scale::Test);
    let mut flush_cfg = cfg();
    flush_cfg.flush_l2_at_end = true;
    let plutus = plutus_core::PlutusEngine::factory(plutus_core::PlutusConfig::full());
    let mut sim = gpu_sim::Simulator::new(flush_cfg, trace.clone(), &plutus);
    let with_flush = sim.run();
    let mut sim = gpu_sim::Simulator::new(cfg(), trace, &plutus);
    let without = sim.run();
    assert!(
        with_flush.stats.traffic[gpu_sim::TrafficClass::Data.idx()].write_bytes
            >= without.stats.traffic[gpu_sim::TrafficClass::Data.idx()].write_bytes,
        "flush must not reduce write traffic"
    );
}
