//! The live observability plane, end to end: epoch-stream delta
//! conservation under concurrent counter updates, byte-identity of the
//! stream across worker counts, run-directory report routing, and the
//! METRICS.md reference staying in sync with the registry and the
//! typed-event catalog.

use plutus_exec::{Executor, Job};
use plutus_telemetry::{CycleClock, Json, Telemetry, EVENT_KINDS, STREAM_NONDETERMINISTIC};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write + Send` sink the test can read back after the stream closes.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs three rounds of pool jobs that hammer shared counters from
/// `workers` threads, closing one epoch per round, and returns the
/// streamed bytes plus the final counter totals.
///
/// Counters are registered on this thread before the pool runs — the
/// same discipline the product code follows (simulators register in
/// sorted order, the executor registers at construction), because
/// registration order is serialization order.
fn streamed_run(workers: usize) -> (String, Vec<(String, u64)>) {
    let tel = Telemetry::with_clock(Arc::new(CycleClock::new()));
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    tel.stream_to(Box::new(buf.clone())).unwrap();
    tel.counter("obs.work_units");
    tel.counter("obs.items");
    let exec = Executor::with_telemetry(Some(workers), tel.clone());
    for round in 1..=3u64 {
        let jobs: Vec<Job<()>> = (0..8u64)
            .map(|j| {
                let tel = tel.clone();
                Job::new(format!("r{round}-j{j}"), move || {
                    tel.counter("obs.work_units").add(round * (j + 1));
                    tel.counter("obs.items").add(j % 3);
                })
            })
            .collect();
        for r in exec.run(jobs) {
            r.expect("observability job panicked");
        }
        tel.advance_clock(round * 100);
        tel.end_epoch(&format!("round-{round}"));
    }
    let lines = tel.close_stream().expect("stream was open");
    assert_eq!(lines, 4, "header + one line per closed epoch");
    assert_eq!(tel.stream_dropped(), 0);
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    (text, tel.snapshot().counters)
}

#[test]
fn streamed_epoch_deltas_conserve_and_match_across_worker_counts() {
    let (serial, totals_serial) = streamed_run(1);
    let (wide, totals_wide) = streamed_run(4);
    // Byte-identity: the stream is part of the repo's determinism
    // contract, so `--jobs 1` and `--jobs 4` must produce the same
    // bytes (worker-count-dependent counters are excluded by design).
    assert_eq!(serial, wide, "stream bytes differ across worker counts");

    let lines: Vec<&str> = serial.lines().collect();
    let header = Json::parse(lines[0]).unwrap();
    assert_eq!(
        header.get("schema").and_then(Json::as_str),
        Some("plutus-stream/v1")
    );
    assert!(matches!(header.get("times"), Some(Json::Bool(true))));

    // Conservation: summing every epoch's deltas per counter must
    // reproduce the final cumulative totals exactly — nothing lost,
    // nothing double-counted, even though the adds raced across
    // worker threads while rounds were in flight.
    let mut summed: BTreeMap<String, u64> = BTreeMap::new();
    for line in &lines[1..] {
        let doc = Json::parse(line).unwrap();
        let Some(Json::Object(deltas)) = doc.get("deltas") else {
            panic!("epoch line without deltas: {line}");
        };
        for (name, v) in deltas {
            *summed.entry(name.clone()).or_insert(0) += v.as_u64().unwrap();
        }
        assert!(
            doc.get("start").and_then(Json::as_u64).is_some(),
            "cycle-clock streams carry epoch times"
        );
    }
    for (name, total) in totals_serial {
        if STREAM_NONDETERMINISTIC.contains(&name.as_str()) {
            assert!(
                !summed.contains_key(&name),
                "nondeterministic counter {name} leaked into the stream"
            );
            continue;
        }
        assert_eq!(
            summed.get(&name).copied().unwrap_or(0),
            total,
            "streamed deltas of {name} do not sum to the final total"
        );
    }
    // The raced counters really did race: totals agree across pools.
    let get =
        |ts: &[(String, u64)], n: &str| ts.iter().find(|(k, _)| k == n).map(|(_, v)| *v).unwrap();
    assert_eq!(
        get(&totals_wide, "obs.work_units"),
        (1 + 2 + 3) * (1..=8).sum::<u64>()
    );
    // j % 3 over j = 0..8 sums to 7, times three rounds.
    assert_eq!(get(&totals_wide, "obs.items"), 3 * 7);
}

#[test]
fn run_dir_routes_reports_into_one_directory() {
    let dir = std::env::temp_dir().join(format!("plutus-obs-rundir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    plutus_telemetry::set_run_dir(&dir).unwrap();
    let path = plutus_bench::save_json("obs-routing", &[]).unwrap();
    plutus_telemetry::clear_run_dir();
    assert_eq!(path, dir.join("obs-routing.json"));
    assert!(path.is_file(), "report not written into the run dir");
    // With the run dir cleared, writers fall back to the historical
    // default location.
    assert_eq!(
        plutus_telemetry::report_dir(),
        std::path::PathBuf::from("target/experiments")
    );
}

#[test]
fn metrics_doc_covers_registry_and_event_catalog() {
    let doc = include_str!("../METRICS.md");
    // Populate a registry the way real runs do: an executor plus a
    // small instrumented matrix run.
    let tel = Telemetry::with_clock(Arc::new(CycleClock::new()));
    let exec = Executor::with_telemetry(Some(2), tel.clone());
    let done: Vec<_> = exec.run(vec![Job::new("noop", || ())]);
    assert_eq!(done.len(), 1);
    let workloads: Vec<_> = workloads::suite().into_iter().take(1).collect();
    let cfg = gpu_sim::GpuConfig::test_small();
    plutus_bench::run_matrix_with_telemetry(
        &workloads,
        &[plutus_bench::Scheme::Pssm, plutus_bench::Scheme::Plutus],
        workloads::Scale::Test,
        &cfg,
        &tel,
        Some(500),
    );
    let snap = tel.snapshot();
    let names: Vec<String> = snap
        .counters
        .iter()
        .map(|(n, _)| n.clone())
        .chain(snap.gauges.iter().map(|(n, _)| n.clone()))
        .chain(snap.histograms.iter().map(|(n, _)| n.clone()))
        .collect();
    let mut missing = Vec::new();
    for name in names {
        // Parameterized families are documented as patterns, not one
        // row per instance: `tenant.t<id>.*` and `span.<name>.ns`.
        let doc_name = normalize(&name);
        if !doc.contains(&format!("`{doc_name}`")) {
            missing.push(doc_name);
        }
    }
    assert!(
        missing.is_empty(),
        "metrics registered but not documented in METRICS.md: {missing:?}"
    );
    let undocumented: Vec<&&str> = EVENT_KINDS
        .iter()
        .filter(|k| !doc.contains(&format!("`{k}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "event kinds missing from METRICS.md: {undocumented:?}"
    );
}

/// `tenant.t7.instructions` -> `tenant.t<id>.instructions`;
/// `span.engine.fill.ns` -> `span.<name>.ns`.
fn normalize(name: &str) -> String {
    if name.starts_with("span.") && name.ends_with(".ns") {
        return "span.<name>.ns".to_string();
    }
    if let Some(rest) = name.strip_prefix("tenant.t") {
        if let Some(dot) = rest.find('.') {
            if rest[..dot].chars().all(|c| c.is_ascii_digit()) {
                return format!("tenant.t<id>{}", &rest[dot..]);
            }
        }
    }
    name.to_string()
}
