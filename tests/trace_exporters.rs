//! Integration tests for the causal flight recorder and its exporters.
//!
//! Pins the three contracts the tracing layer advertises:
//!
//! 1. **Conservation** — at a sampling period of 1 with zero drops, the
//!    per-class bytes summed over traced records equal the simulator's
//!    aggregate `SimStats` class totals *exactly*, for every scheme.
//! 2. **Determinism** — trace content is byte-identical across worker
//!    counts (`--jobs 1` vs `--jobs 4`), because each run owns its
//!    telemetry, cycle clock, and tracer; only scheduler lanes differ.
//! 3. **Golden output** — the collapsed-stack and Chrome-trace
//!    renderings match committed golden files, and the Chrome trace
//!    parses back as JSON (the Perfetto-loadable shape).

use gpu_sim::GpuConfig;
use plutus_bench::{
    chrome_trace, collapsed_stack, run_one_traced, try_run_matrix_traced_on, Scheme, TracedRun,
};
use plutus_exec::Executor;
use plutus_telemetry::{Json, TraceRecord, DEFAULT_TRACE_CAPACITY};
use workloads::{by_name, Scale, WorkloadSpec};

fn victims() -> Vec<WorkloadSpec> {
    vec![by_name("bfs").unwrap(), by_name("backprop").unwrap()]
}

#[test]
fn attribution_conserves_class_bytes_for_every_scheme() {
    let cfg = GpuConfig::test_small();
    let w = by_name("bfs").unwrap();
    for scheme in [
        Scheme::None,
        Scheme::Pssm,
        Scheme::CommonCounters,
        Scheme::Plutus,
    ] {
        let (result, traced) =
            run_one_traced(&w, scheme, Scale::Test, &cfg, 1, DEFAULT_TRACE_CAPACITY);
        assert_eq!(traced.dropped, 0, "{scheme:?}: lossless trace expected");
        let sim: Vec<(String, u64)> = traced.class_bytes.clone();
        assert_eq!(
            traced.traced_class_bytes(),
            sim,
            "{scheme:?}: traced bytes must equal SimStats class totals"
        );
        let traced_total: u64 = traced.traced_class_bytes().iter().map(|(_, b)| b).sum();
        assert_eq!(traced_total, result.stats.total_bytes());
    }
}

#[test]
fn sampling_preserves_causality_but_not_conservation() {
    let cfg = GpuConfig::test_small();
    let w = by_name("bfs").unwrap();
    let (_, traced) = run_one_traced(&w, Scheme::Pssm, Scale::Test, &cfg, 8, 1 << 16);
    // Every child must reference a root that is present in the trace.
    let roots: Vec<u64> = traced
        .records
        .iter()
        .filter(|r| r.id != 0)
        .map(|r| r.id)
        .collect();
    assert!(!roots.is_empty());
    for rec in traced.records.iter().filter(|r| r.id == 0) {
        assert!(
            roots.contains(&rec.cause),
            "child record with cause {} has no sampled root",
            rec.cause
        );
    }
    // A 1-in-8 sample traces fewer bytes than the run moved.
    let traced_total: u64 = traced.traced_class_bytes().iter().map(|(_, b)| b).sum();
    let sim_total: u64 = traced.class_bytes.iter().map(|(_, b)| b).sum();
    assert!(traced_total < sim_total);
}

#[test]
fn trace_content_is_identical_across_worker_counts() {
    let cfg = GpuConfig::test_small();
    let w = victims();
    let schemes = [Scheme::None, Scheme::Pssm, Scheme::Plutus];
    let serial = Executor::sequential();
    let wide = Executor::new(Some(4));
    let (rows_a, traces_a) =
        try_run_matrix_traced_on(&serial, &w, &schemes, Scale::Test, &cfg, 1, 1 << 20).unwrap();
    let (rows_b, traces_b) =
        try_run_matrix_traced_on(&wide, &w, &schemes, Scale::Test, &cfg, 1, 1 << 20).unwrap();
    assert_eq!(format!("{rows_a:?}"), format!("{rows_b:?}"));
    // Trace content (collapsed stacks and the Chrome trace without
    // scheduler lanes) is byte-identical for any worker count.
    assert_eq!(collapsed_stack(&traces_a), collapsed_stack(&traces_b));
    assert_eq!(
        chrome_trace(&traces_a, None).to_string_compact(),
        chrome_trace(&traces_b, None).to_string_compact()
    );
}

/// Compares `actual` against a committed golden file, or rewrites the
/// file when `UPDATE_GOLDEN=1` (then fails, so a green run never
/// silently regenerates).
fn check_golden(actual: &str, golden: &str, path: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&full, actual).unwrap();
        panic!("regenerated {full}; rerun without UPDATE_GOLDEN");
    }
    assert_eq!(
        actual.trim_end(),
        golden.trim_end(),
        "output drifted from {path}; rerun with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn collapsed_stack_matches_golden_file() {
    let cfg = GpuConfig::test_small();
    let w = by_name("bfs").unwrap();
    let (_, traced) = run_one_traced(&w, Scheme::Pssm, Scale::Test, &cfg, 1, 1 << 20);
    let text = collapsed_stack(&[traced]);
    check_golden(
        &text,
        include_str!("golden/bfs_pssm.folded"),
        "../../tests/golden/bfs_pssm.folded",
    );
}

/// A hand-built two-access trace: the exporter-shape golden fixture.
fn tiny_fixture() -> TracedRun {
    let rec = |id, cause, kind, class, bytes, level, cycle| TraceRecord {
        id,
        cause,
        kind,
        class,
        bytes,
        write: false,
        level,
        cycle,
        addr: 0x40,
        info: 0,
    };
    TracedRun {
        workload: "w".into(),
        scheme: "plutus".into(),
        cycles: 100,
        class_bytes: vec![("data".into(), 64), ("counter".into(), 32)],
        records: vec![
            rec(1, 0, "fill", "", 0, 0, 10),
            rec(0, 1, "traffic", "data", 32, 0, 12),
            rec(0, 1, "traffic", "counter", 32, 0, 14),
            rec(0, 1, "value_vouch", "", 0, 0, 15),
            rec(2, 0, "writeback", "", 0, 0, 40),
            rec(0, 2, "traffic", "data", 32, 0, 41),
        ],
        dropped: 0,
    }
}

#[test]
fn chrome_trace_matches_golden_file() {
    let doc = chrome_trace(&[tiny_fixture()], None);
    check_golden(
        &doc.to_string_pretty(),
        include_str!("golden/tiny_trace.json"),
        "../../tests/golden/tiny_trace.json",
    );
}

#[test]
fn real_chrome_trace_is_loadable_json() {
    let cfg = GpuConfig::test_small();
    let w = by_name("bfs").unwrap();
    let (_, traced) = run_one_traced(&w, Scheme::Plutus, Scale::Test, &cfg, 1, 1 << 20);
    let doc = chrome_trace(&[traced], None);
    let parsed = Json::parse(&doc.to_string_compact()).expect("Perfetto-loadable JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Every event carries the mandatory Chrome trace fields.
    for e in events {
        assert!(e.get("ph").is_some());
        assert!(e.get("pid").is_some());
        let ph = e.get("ph").and_then(Json::as_str).unwrap();
        if ph != "M" {
            assert!(e.get("ts").is_some());
        }
    }
}
