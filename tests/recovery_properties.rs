//! Fail-operational properties of the recovery subsystem, end-to-end:
//! crash-consistent checkpoint/restore for every engine scheme, retry
//! cycle-accounting, and attack detection under graceful degradation.

use gpu_sim::{
    FaultKind, FaultOutcome, FaultSchedule, FaultTrigger, GpuConfig, RetryPolicy, ScheduledFault,
    Simulator, TransientConfig,
};
use plutus_bench::{recovery_schemes, Scheme};
use plutus_recovery::{
    crash_gate, run_crash_campaign, run_transient_campaign, transient_gate, CrashCampaignConfig,
    SchemeProvider, TransientCampaignConfig,
};
use workloads::{by_name, Scale};

/// Every scheme whose engine supports checkpoint/restore — all of them
/// except the no-security baseline.
fn checkpointable_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Pssm,
        Scheme::PssmMac4,
        Scheme::CommonCounters,
        Scheme::FineLeafCoarseTree,
        Scheme::All32,
        Scheme::ValueVerifyOnly,
        Scheme::Compact2Bit,
        Scheme::Compact3Bit,
        Scheme::CompactAdaptive,
        Scheme::Plutus,
        Scheme::PlutusNoTree,
        Scheme::PssmNoTree,
    ]
}

/// Checkpoint → keep running (the doomed tail) → crash → restore →
/// recover must read back bit-identical, with no spurious violations,
/// for every engine scheme.
#[test]
fn crash_restore_is_bit_identical_for_every_scheme() {
    let w = by_name("bfs").unwrap();
    for scheme in checkpointable_schemes() {
        let factory = scheme.make_factory();
        let mut sim = Simulator::new(
            GpuConfig::test_small(),
            w.trace(Scale::Test),
            factory.as_ref(),
        );
        sim.set_checkpoint_interval(400);
        let _ = sim.run_until(1500);
        let audit = sim
            .crash_recover_audit()
            .unwrap_or_else(|e| panic!("{}: recovery refused: {e}", scheme.label()));
        assert!(audit.audited > 0, "{}: nothing audited", scheme.label());
        assert!(
            audit.is_clean(),
            "{}: {} mismatches, {} spurious violations, {} unrecoverable (crash@{} ckpt@{})",
            scheme.label(),
            audit.mismatches,
            audit.spurious_violations,
            audit.report.failed.len(),
            audit.crash_cycle,
            audit.checkpoint_cycle
        );
    }
}

/// The retry path must never charge fewer cycles than a clean fetch:
/// every retry books the wasted fetch plus at least the base backoff,
/// and the run as a whole cannot finish earlier than its fault-free
/// twin.
#[test]
fn retry_never_charges_fewer_cycles_than_clean() {
    let w = by_name("histo").unwrap();
    let run = |rate: f64| {
        let factory = Scheme::Pssm.make_factory();
        let mut sim = Simulator::new(
            GpuConfig::test_small(),
            w.trace(Scale::Test),
            factory.as_ref(),
        );
        if rate > 0.0 {
            sim.set_transient_faults(TransientConfig::new(rate, 99));
            sim.set_retry_policy(RetryPolicy::with_limit(3));
        }
        sim.run()
    };
    let clean = run(0.0);
    let faulty = run(0.1);
    assert_eq!(clean.stats.violations, 0);
    assert_eq!(faulty.stats.violations, 0, "transients must not escalate");
    assert!(faulty.stats.retries > 0, "rate 0.1 must force retries");
    assert!(
        faulty.stats.retry_cycles >= faulty.stats.retries * RetryPolicy::default().backoff_base,
        "each retry charges at least the base backoff on top of the re-fetch: {} cycles / {} retries",
        faulty.stats.retry_cycles,
        faulty.stats.retries
    );
    assert!(
        faulty.stats.cycles >= clean.stats.cycles,
        "retries cannot make the run finish earlier ({} < {})",
        faulty.stats.cycles,
        clean.stats.cycles
    );
}

/// A Plutus engine degraded by a soft-error barrage (value-cache fast
/// path frozen) must still detect persistent adversarial tampering.
#[test]
fn degraded_plutus_still_detects_tampering() {
    let w = by_name("bfs").unwrap();
    let trace = w.trace(Scale::Test);
    let n_accesses = trace.accesses.len() as u64;
    let targets: Vec<_> = trace
        .initial_image
        .iter()
        .map(|(a, _)| *a)
        .take(6)
        .collect();
    assert!(!targets.is_empty(), "bfs must have an initial image");
    let mut schedule = FaultSchedule::new();
    // Persistent corruption lands late in the run, after the soft-error
    // barrage below has had time to freeze the value-cache fast path.
    for (i, addr) in targets.iter().enumerate() {
        schedule.push(ScheduledFault {
            trigger: FaultTrigger::AtAccess(n_accesses * 3 / 4 + i as u64),
            addr: *addr,
            kind: FaultKind::CorruptData { mask: [0xA5; 32] },
        });
    }
    let factory = Scheme::Plutus.make_factory();
    let mut sim = Simulator::new(GpuConfig::test_small(), trace, factory.as_ref());
    sim.set_transient_faults(TransientConfig::new(0.2, 5));
    sim.set_retry_policy(RetryPolicy::with_limit(2));
    sim.set_fault_schedule(schedule);
    let r = sim.run();
    let frozen = r
        .stats
        .engine
        .iter()
        .find(|(n, _)| n == "degraded_verifier_frozen")
        .map_or(0, |(_, v)| *v);
    assert!(frozen >= 1, "soft-error barrage must freeze the fast path");
    assert!(
        r.stats.transients_recovered > 0,
        "retries must clear transients while degradation builds"
    );
    let detected = r
        .stats
        .fault_records
        .iter()
        .filter(|f| f.kind == "corrupt_data" && matches!(f.outcome, FaultOutcome::Detected { .. }))
        .count();
    assert!(
        detected >= 1,
        "degraded engine must still catch persistent tampering: {:?}",
        r.stats.fault_records
    );
}

/// The bench scheme catalogue drives both recovery campaigns through
/// the public gates cleanly.
#[test]
fn recovery_campaigns_gate_clean_through_bench_schemes() {
    let w = [by_name("bfs").unwrap()];
    let cfg = GpuConfig::test_small();
    let tc = TransientCampaignConfig {
        soft_error_rate: 0.1,
        retry_limit: 3,
        runs: 1,
        seed: 3,
        scale: Scale::Test,
    };
    let rows = run_transient_campaign(&w, &recovery_schemes(), &tc, &cfg);
    transient_gate(&rows).expect("no transient may be misclassified as an attack");
    let cc = CrashCampaignConfig {
        checkpoint_cycles: 600,
        crash_points: 2,
        scale: Scale::Test,
    };
    let crows = run_crash_campaign(&w, &recovery_schemes(), &cc, &cfg);
    crash_gate(&crows).expect("every crash audit must be bit-identical");
}
