//! Fail-operational properties of the recovery subsystem, end-to-end:
//! crash-consistent checkpoint/restore for every engine scheme, retry
//! cycle-accounting, and attack detection under graceful degradation.

use gpu_sim::{
    BackingMemory, FaultKind, FaultOutcome, FaultSchedule, FaultTrigger, GpuConfig, RetryPolicy,
    ScheduledFault, SectorAddr, Simulator, TransientConfig, SECTOR_SIZE,
};
use plutus_bench::{recovery_schemes, Scheme};
use plutus_recovery::{
    crash_gate, run_crash_campaign, run_transient_campaign, transient_gate, CrashCampaignConfig,
    SchemeProvider, TransientCampaignConfig,
};
use workloads::{by_name, Scale};

/// Every scheme whose engine supports checkpoint/restore — all of them
/// except the no-security baseline.
fn checkpointable_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Pssm,
        Scheme::PssmMac4,
        Scheme::CommonCounters,
        Scheme::FineLeafCoarseTree,
        Scheme::All32,
        Scheme::ValueVerifyOnly,
        Scheme::Compact2Bit,
        Scheme::Compact3Bit,
        Scheme::CompactAdaptive,
        Scheme::Plutus,
        Scheme::PlutusNoTree,
        Scheme::PssmNoTree,
    ]
}

/// Checkpoint → keep running (the doomed tail) → crash → restore →
/// recover must read back bit-identical, with no spurious violations,
/// for every engine scheme.
#[test]
fn crash_restore_is_bit_identical_for_every_scheme() {
    let w = by_name("bfs").unwrap();
    for scheme in checkpointable_schemes() {
        let factory = scheme.make_factory();
        let mut sim = Simulator::new(
            GpuConfig::test_small(),
            w.trace(Scale::Test),
            factory.as_ref(),
        );
        sim.set_checkpoint_interval(400);
        let _ = sim.run_until(1500);
        let audit = sim
            .crash_recover_audit()
            .unwrap_or_else(|e| panic!("{}: recovery refused: {e}", scheme.label()));
        assert!(audit.audited > 0, "{}: nothing audited", scheme.label());
        assert!(
            audit.is_clean(),
            "{}: {} mismatches, {} spurious violations, {} unrecoverable (crash@{} ckpt@{})",
            scheme.label(),
            audit.mismatches,
            audit.spurious_violations,
            audit.report.failed.len(),
            audit.crash_cycle,
            audit.checkpoint_cycle
        );
    }
}

/// The retry path must never charge fewer cycles than a clean fetch:
/// every retry books the wasted fetch plus at least the base backoff,
/// and the run as a whole cannot finish earlier than its fault-free
/// twin.
#[test]
fn retry_never_charges_fewer_cycles_than_clean() {
    let w = by_name("histo").unwrap();
    let run = |rate: f64| {
        let factory = Scheme::Pssm.make_factory();
        let mut sim = Simulator::new(
            GpuConfig::test_small(),
            w.trace(Scale::Test),
            factory.as_ref(),
        );
        if rate > 0.0 {
            sim.set_transient_faults(TransientConfig::new(rate, 99));
            sim.set_retry_policy(RetryPolicy::with_limit(3));
        }
        sim.run()
    };
    let clean = run(0.0);
    let faulty = run(0.1);
    assert_eq!(clean.stats.violations, 0);
    assert_eq!(faulty.stats.violations, 0, "transients must not escalate");
    assert!(faulty.stats.retries > 0, "rate 0.1 must force retries");
    assert!(
        faulty.stats.retry_cycles >= faulty.stats.retries * RetryPolicy::default().backoff_base,
        "each retry charges at least the base backoff on top of the re-fetch: {} cycles / {} retries",
        faulty.stats.retry_cycles,
        faulty.stats.retries
    );
    assert!(
        faulty.stats.cycles >= clean.stats.cycles,
        "retries cannot make the run finish earlier ({} < {})",
        faulty.stats.cycles,
        clean.stats.cycles
    );
}

/// A Plutus engine degraded by a soft-error barrage (value-cache fast
/// path frozen) must still detect persistent adversarial tampering.
#[test]
fn degraded_plutus_still_detects_tampering() {
    let w = by_name("bfs").unwrap();
    let trace = w.trace(Scale::Test);
    let n_accesses = trace.accesses.len() as u64;
    let targets: Vec<_> = trace
        .initial_image
        .iter()
        .map(|(a, _)| *a)
        .take(6)
        .collect();
    assert!(!targets.is_empty(), "bfs must have an initial image");
    let mut schedule = FaultSchedule::new();
    // Persistent corruption lands late in the run, after the soft-error
    // barrage below has had time to freeze the value-cache fast path.
    for (i, addr) in targets.iter().enumerate() {
        schedule.push(ScheduledFault {
            trigger: FaultTrigger::AtAccess(n_accesses * 3 / 4 + i as u64),
            addr: *addr,
            kind: FaultKind::CorruptData { mask: [0xA5; 32] },
        });
    }
    let factory = Scheme::Plutus.make_factory();
    let mut sim = Simulator::new(GpuConfig::test_small(), trace, factory.as_ref());
    sim.set_transient_faults(TransientConfig::new(0.2, 5));
    sim.set_retry_policy(RetryPolicy::with_limit(2));
    sim.set_fault_schedule(schedule);
    let r = sim.run();
    let frozen = r
        .stats
        .engine
        .iter()
        .find(|(n, _)| n == "degraded_verifier_frozen")
        .map_or(0, |(_, v)| *v);
    assert!(frozen >= 1, "soft-error barrage must freeze the fast path");
    assert!(
        r.stats.transients_recovered > 0,
        "retries must clear transients while degradation builds"
    );
    let detected = r
        .stats
        .fault_records
        .iter()
        .filter(|f| f.kind == "corrupt_data" && matches!(f.outcome, FaultOutcome::Detected { .. }))
        .count();
    assert!(
        detected >= 1,
        "degraded engine must still catch persistent tampering: {:?}",
        r.stats.fault_records
    );
}

/// A counter-group overflow landing *between* the checkpoint and the
/// crash is the hardest recovery case: the group major bumped and every
/// minor reset after the checkpointed state was taken, so a naive
/// restart from the reverted counters could accept stale values. The
/// recovery floor (major-with-cleared-minor for split counters, the
/// checkpointed value for monolithic ones) must re-prove every resident
/// sector against the persistent MACs and read back bit-identical, on
/// both the split-counter PSSM engine and the monolithic
/// common-counters engine.
#[test]
fn overflow_between_checkpoint_and_crash_recovers_bit_identical() {
    for scheme in [Scheme::Pssm, Scheme::CommonCounters] {
        for seed in [1u64, 7, 23] {
            let label = format!("{} seed {seed}", scheme.label());
            let factory = scheme.make_factory();
            let mut e = factory.build(0);
            let mut mem = BackingMemory::new();
            let s = |i: u64| SectorAddr::new(i * SECTOR_SIZE);
            let payload = |tag: u64| {
                let mut p = [0u8; 32];
                p[0] = tag as u8;
                p[1] = (tag >> 8) as u8;
                p[2] = seed as u8;
                p
            };
            // A neighbour resident in the hammered sector's group keeps
            // a low minor the overflow will clear.
            e.on_writeback(s(1), &payload(0x9999), &mut mem);
            // Most of the way to the 128-write minor overflow...
            let pre = 100 + (seed as usize % 20);
            for i in 0..pre {
                e.on_writeback(s(0), &payload(i as u64), &mut mem);
            }
            let ck = e
                .checkpoint()
                .unwrap_or_else(|| panic!("{label}: engine must checkpoint"));
            // ...and across it only after the checkpoint: these writes
            // (and the group re-encryption they trigger) are exactly
            // what the crash loses.
            let post = 40 + (seed as usize % 9);
            for i in 0..post {
                e.on_writeback(s(0), &payload(0x1000 + i as u64), &mut mem);
            }
            if scheme == Scheme::Pssm {
                let overflows = e
                    .extra_stats()
                    .iter()
                    .find(|(n, _)| n == "ctr_group_overflows")
                    .map_or(0, |(_, v)| *v);
                assert!(
                    overflows >= 1,
                    "{label}: the doomed tail must cross a group overflow"
                );
            }
            let oracle0 = e
                .peek_plaintext(s(0), &mem)
                .unwrap_or_else(|| panic!("{label}: peek before crash"));
            let oracle1 = e.peek_plaintext(s(1), &mem).unwrap();
            assert!(e.crash_revert(ck.as_ref()), "{label}: revert refused");
            let report = e
                .recover(&mem, &mem.resident_addrs())
                .unwrap_or_else(|e| panic!("{label}: recovery refused: {e}"));
            assert!(
                report.failed.is_empty(),
                "{label}: unrecoverable sectors {:?}",
                report.failed
            );
            let f0 = e.on_fill(s(0), &mut mem);
            assert_eq!(f0.plaintext, oracle0, "{label}: hammered sector drifted");
            assert!(f0.violation.is_none(), "{label}: {:?}", f0.violation);
            let f1 = e.on_fill(s(1), &mut mem);
            assert_eq!(f1.plaintext, oracle1, "{label}: neighbour drifted");
            assert!(f1.violation.is_none(), "{label}: {:?}", f1.violation);
        }
    }
}

/// The bench scheme catalogue drives both recovery campaigns through
/// the public gates cleanly.
#[test]
fn recovery_campaigns_gate_clean_through_bench_schemes() {
    let w = [by_name("bfs").unwrap()];
    let cfg = GpuConfig::test_small();
    let tc = TransientCampaignConfig {
        soft_error_rate: 0.1,
        retry_limit: 3,
        runs: 1,
        seed: 3,
        scale: Scale::Test,
    };
    let rows = run_transient_campaign(&w, &recovery_schemes(), &tc, &cfg);
    transient_gate(&rows).expect("no transient may be misclassified as an attack");
    let cc = CrashCampaignConfig {
        checkpoint_cycles: 600,
        crash_points: 2,
        scale: Scale::Test,
    };
    let crows = run_crash_campaign(&w, &recovery_schemes(), &cc, &cfg);
    crash_gate(&crows).expect("every crash audit must be bit-identical");
}
