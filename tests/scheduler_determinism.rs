//! Cross-worker-count determinism of the experiment scheduler.
//!
//! Every fan-out in the workspace — the IPC matrix, the adversarial
//! fault campaign, the transient/crash recovery campaigns, and the
//! multi-tenant storm campaign — runs its simulations as jobs on a
//! `plutus_exec::Executor`. These tests
//! pin the scheduler's core contract: for a fixed seed, the rendered
//! reports (JSON and CSV) are **byte-identical** whether the pool has
//! one worker or many, because per-job seeds derive purely from the
//! (seed, workload, scheme, trial) coordinates and results assemble in
//! submission order.

use gpu_sim::GpuConfig;
use plutus_bench::{
    campaign_csv, campaign_json, recovery_schemes, run_campaign_on, try_run_matrix_on,
    CampaignConfig, CampaignKind, Scheme,
};
use plutus_exec::Executor;
use plutus_recovery::{
    crash_csv, crash_json, run_crash_campaign_on, run_storm_campaign_on, run_transient_campaign_on,
    storm_csv, storm_json, transient_csv, transient_json, CrashCampaignConfig, StormCampaignConfig,
    TransientCampaignConfig,
};
use workloads::{by_name, Scale, WorkloadSpec};

/// One serial pool and one wide pool — wide enough that jobs outnumber
/// workers and work-stealing actually reorders execution.
fn pools() -> (Executor, Executor) {
    (Executor::sequential(), Executor::new(Some(4)))
}

fn victims() -> Vec<WorkloadSpec> {
    vec![by_name("bfs").unwrap(), by_name("btree").unwrap()]
}

#[test]
fn matrix_is_identical_across_worker_counts() {
    let (serial, wide) = pools();
    let w = victims();
    let schemes = [Scheme::None, Scheme::Pssm, Scheme::Plutus];
    let cfg = GpuConfig::test_small();
    let a = try_run_matrix_on(&serial, &w, &schemes, Scale::Test, &cfg).unwrap();
    let b = try_run_matrix_on(&wide, &w, &schemes, Scale::Test, &cfg).unwrap();
    // Measurement carries floats; the Debug rendering is bit-faithful,
    // so string equality here is value equality.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    // Row order is the submission order: workload-major, scheme-minor.
    let order: Vec<(String, String)> = a
        .iter()
        .map(|m| (m.workload.clone(), m.scheme.clone()))
        .collect();
    let mut expect = Vec::new();
    for wl in &w {
        for s in &schemes {
            expect.push((wl.name.to_string(), s.label()));
        }
    }
    assert_eq!(order, expect);
}

#[test]
fn campaign_reports_are_byte_identical_across_worker_counts() {
    let (serial, wide) = pools();
    let w = victims();
    let campaign = CampaignConfig {
        kind: CampaignKind::Sweep,
        runs: 4,
        faults_per_run: 2,
        seed: 0xDEC0DE,
        scale: Scale::Test,
    };
    let cfg = GpuConfig::test_small();
    let a = run_campaign_on(&serial, &w, &campaign, &cfg);
    let b = run_campaign_on(&wide, &w, &campaign, &cfg);
    assert_eq!(
        campaign_json(&a).to_string_pretty(),
        campaign_json(&b).to_string_pretty()
    );
    assert_eq!(campaign_csv(&a), campaign_csv(&b));
}

#[test]
fn transient_reports_are_byte_identical_across_worker_counts() {
    let (serial, wide) = pools();
    let w = victims();
    let campaign = TransientCampaignConfig {
        soft_error_rate: 0.05,
        retry_limit: 3,
        runs: 2,
        seed: 77,
        scale: Scale::Test,
    };
    let cfg = GpuConfig::test_small();
    let a = run_transient_campaign_on(&serial, &w, &recovery_schemes(), &campaign, &cfg);
    let b = run_transient_campaign_on(&wide, &w, &recovery_schemes(), &campaign, &cfg);
    assert_eq!(
        transient_json(&a).to_string_pretty(),
        transient_json(&b).to_string_pretty()
    );
    assert_eq!(transient_csv(&a), transient_csv(&b));
}

#[test]
fn storm_reports_are_byte_identical_across_worker_counts() {
    let (serial, wide) = pools();
    let campaign = StormCampaignConfig {
        accesses_per_tenant: 700,
        faults: 12,
        crash_points: 1,
        ..StormCampaignConfig::new(0xD17E)
    };
    let cfg = GpuConfig::test_small();
    let a = run_storm_campaign_on(&serial, &campaign, &cfg);
    let b = run_storm_campaign_on(&wide, &campaign, &cfg);
    assert_eq!(
        storm_json(&a, &campaign).to_string_pretty(),
        storm_json(&b, &campaign).to_string_pretty()
    );
    assert_eq!(storm_csv(&a, &campaign), storm_csv(&b, &campaign));
}

#[test]
fn crash_reports_are_byte_identical_across_worker_counts() {
    let (serial, wide) = pools();
    let w = victims();
    let campaign = CrashCampaignConfig {
        checkpoint_cycles: 500,
        crash_points: 2,
        scale: Scale::Test,
    };
    let cfg = GpuConfig::test_small();
    let a = run_crash_campaign_on(&serial, &w, &recovery_schemes(), &campaign, &cfg);
    let b = run_crash_campaign_on(&wide, &w, &recovery_schemes(), &campaign, &cfg);
    assert_eq!(
        crash_json(&a).to_string_pretty(),
        crash_json(&b).to_string_pretty()
    );
    assert_eq!(crash_csv(&a), crash_csv(&b));
}
