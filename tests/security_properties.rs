//! Adversarial integration tests: every engine must detect data
//! tampering, data replay, MAC tampering, and counter rollback — and the
//! probability machinery behind Plutus's value-based verification must
//! reject random (tamper-diffused) data in practice.

use gpu_sim::{
    BackingMemory, DetectionLayer, EngineFactory, FaultKind, FaultOutcome, FaultSchedule,
    FaultTrigger, GpuConfig, MetaFault, ScheduledFault, SectorAddr, SecurityEngine, Simulator,
    Trace,
};
use plutus_core::{PlutusConfig, PlutusEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_mem::{CommonCountersEngine, PssmEngine, SecureMemConfig};

fn victims() -> Vec<(&'static str, Box<dyn SecurityEngine>)> {
    vec![
        (
            "pssm",
            Box::new(PssmEngine::new(SecureMemConfig::test_small())),
        ),
        (
            "common-counters",
            Box::new(CommonCountersEngine::new(SecureMemConfig::test_small())),
        ),
        (
            "plutus",
            Box::new(PlutusEngine::new(PlutusConfig::test_small())),
        ),
    ]
}

#[test]
fn single_bit_flips_are_detected_at_any_position() {
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let addr = SectorAddr::new(0x400);
        engine.on_writeback(addr, b"sensitive cloud workload output!", &mut mem);
        for byte in [0usize, 7, 15, 16, 31] {
            for bit in [0u8, 3, 7] {
                let mut mask = [0u8; 32];
                mask[byte] = 1 << bit;
                assert!(mem.corrupt(addr, &mask));
                let fill = engine.on_fill(addr, &mut mem);
                assert!(
                    fill.violation.is_some(),
                    "{name}: flip at byte {byte} bit {bit} undetected"
                );
                mem.corrupt(addr, &mask); // restore
            }
        }
    }
}

#[test]
fn multi_sector_garbage_rewrites_are_detected() {
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..16u64 {
            engine.on_writeback(SectorAddr::new(i * 32), &[i as u8; 32], &mut mem);
        }
        for i in 0..16u64 {
            let addr = SectorAddr::new(i * 32);
            let mut garbage = [0u8; 32];
            rng.fill(&mut garbage[..]);
            mem.write(addr, garbage);
            let fill = engine.on_fill(addr, &mut mem);
            assert!(
                fill.violation.is_some(),
                "{name}: garbage rewrite at {addr} undetected"
            );
        }
    }
}

#[test]
fn replay_of_stale_ciphertext_is_detected() {
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let addr = SectorAddr::new(0x800);
        engine.on_writeback(addr, &[1; 32], &mut mem);
        let stale = mem.snapshot(addr).unwrap();
        engine.on_writeback(addr, &[2; 32], &mut mem);
        assert!(
            mem.replay(addr, stale),
            "{name}: replay target not resident"
        );
        let fill = engine.on_fill(addr, &mut mem);
        assert!(fill.violation.is_some(), "{name}: replay undetected");
    }
}

#[test]
fn cross_address_splicing_is_detected() {
    // Move valid ciphertext from one address to another (spoof/splice).
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let a = SectorAddr::new(0x1000);
        let b = SectorAddr::new(0x2000);
        engine.on_writeback(a, &[0x11; 32], &mut mem);
        engine.on_writeback(b, &[0x22; 32], &mut mem);
        let stolen = mem.snapshot(a).unwrap();
        mem.write(b, stolen);
        let fill = engine.on_fill(b, &mut mem);
        assert!(fill.violation.is_some(), "{name}: splice undetected");
    }
}

#[test]
fn mac_store_tampering_is_detected() {
    let mut engine = PssmEngine::new(SecureMemConfig::test_small());
    let mut mem = BackingMemory::new();
    let addr = SectorAddr::new(0);
    engine.on_writeback(addr, &[5; 32], &mut mem);
    engine.macs_mut().tamper(addr);
    let fill = engine.on_fill(addr, &mut mem);
    assert!(fill.violation.is_some(), "MAC tamper undetected");
}

#[test]
fn counter_rollback_is_detected_after_eviction() {
    let mut engine = PlutusEngine::new(PlutusConfig::test_small());
    let mut mem = BackingMemory::new();
    let addr = SectorAddr::new(0);
    // Drive past compact saturation so the original counter is live.
    for i in 0..9u8 {
        engine.on_writeback(addr, &[i; 32], &mut mem);
    }
    // Evict the counter sector.
    for i in 1..80u64 {
        engine.on_fill(SectorAddr::new(i * 128 * 32), &mut mem);
    }
    engine.counters_mut().tamper_minor(addr, 0);
    let fill = engine.on_fill(addr, &mut mem);
    assert!(fill.violation.is_some(), "counter rollback undetected");
}

#[test]
fn compact_counter_tampering_is_detected() {
    let mut engine = PlutusEngine::new(PlutusConfig::test_small());
    let mut mem = BackingMemory::new();
    let addr = SectorAddr::new(0);
    engine.on_writeback(addr, &[1; 32], &mut mem);
    engine.on_writeback(addr, &[2; 32], &mut mem);
    // Evict the compact block by touching many distinct blocks.
    for i in 1..200u64 {
        engine.on_fill(SectorAddr::new(i * 64 * 32), &mut mem);
    }
    engine.compact_mut().unwrap().tamper(addr, 0);
    let fill = engine.on_fill(addr, &mut mem);
    assert!(
        fill.violation.is_some(),
        "compact counter rollback undetected"
    );
}

#[test]
fn tampered_data_never_passes_value_verification() {
    // The statistical heart of the paper: decrypting tampered AES-XTS
    // ciphertext yields uniform noise, which must not clear the 3-of-4
    // value-cache rule. 5000 tamper trials, zero tolerated acceptances
    // (expected rate < 2^-56 per unit).
    let mut engine = PlutusEngine::new(PlutusConfig::test_small());
    let mut mem = BackingMemory::new();
    let mut rng = StdRng::seed_from_u64(7);
    // Warm the value cache with honest, highly regular data.
    for i in 0..256u64 {
        let addr = SectorAddr::new(i * 32);
        engine.on_writeback(addr, &[(i % 7) as u8; 32], &mut mem);
        engine.on_fill(addr, &mut mem);
    }
    let mut undetected = 0;
    for trial in 0..5000u64 {
        let addr = SectorAddr::new((trial % 256) * 32);
        let mut mask = [0u8; 32];
        rng.fill(&mut mask[..]);
        mem.corrupt(addr, &mask);
        let fill = engine.on_fill(addr, &mut mem);
        if fill.violation.is_none() {
            undetected += 1;
        }
        mem.corrupt(addr, &mask); // restore
    }
    assert_eq!(
        undetected, 0,
        "{undetected}/5000 tampered sectors passed verification"
    );
}

// ---------------------------------------------------------------------------
// Mid-run faults: the attacks above poke engines directly between calls;
// these drive the full simulator and let a `FaultSchedule` strike while the
// workload is executing, then read the adjudicated `FaultRecord`s back out
// of `SimStats`.
// ---------------------------------------------------------------------------

fn sim_factories() -> Vec<(&'static str, Box<dyn EngineFactory>)> {
    vec![
        (
            "pssm",
            Box::new(PssmEngine::factory(SecureMemConfig::test_small())),
        ),
        (
            "common-counters",
            Box::new(CommonCountersEngine::factory(SecureMemConfig::test_small())),
        ),
        (
            "plutus",
            Box::new(PlutusEngine::factory(PlutusConfig::test_small())),
        ),
    ]
}

/// Single-partition, single-warp config so trace order is arrival order and
/// one engine sees every access.
fn serial_cfg() -> GpuConfig {
    GpuConfig {
        partitions: 1,
        warps: 1,
        ..GpuConfig::test_small()
    }
}

/// A trace that writes `victim` `writes` times, then streams enough
/// conflicting filler *writes* to force the victim's data line — and, via
/// the fillers' own writebacks, its counter metadata — out of every cache,
/// then reads the victim back. Fillers share the victim's L2 set (stride
/// 4 KiB from sector 0) so eviction is certain, and being writes they
/// dirty their regions, generating counter traffic under every scheme.
fn evict_then_read_trace(victim: SectorAddr, writes: u8) -> Trace {
    let mut t = Trace::new("midrun-fault");
    for i in 0..writes {
        t.push_write(victim, [i + 1; 32], 0, 1);
    }
    // Stay below test_small's 1 MiB protected range: 250 × 4 KiB < 2^20.
    for i in 1..=250u64 {
        t.push_write(SectorAddr::new(i * 4096), [i as u8; 32], 0, 1);
    }
    t.push_read(victim, 0, 1);
    t
}

fn one_fault(trigger: FaultTrigger, addr: SectorAddr, fault: MetaFault) -> FaultSchedule {
    let mut s = FaultSchedule::new();
    s.push(ScheduledFault {
        trigger,
        addr,
        kind: FaultKind::Metadata(fault),
    });
    s
}

fn run_with_fault(
    factory: &dyn EngineFactory,
    trace: Trace,
    schedule: FaultSchedule,
) -> Vec<gpu_sim::FaultRecord> {
    let mut sim = Simulator::new(serial_cfg(), trace, factory);
    sim.set_fault_schedule(schedule);
    sim.run().stats.fault_records
}

#[test]
fn midrun_compact_rollback_is_adjudicated_per_engine() {
    // Strike just before the final read: roll the victim's compact counter
    // back to zero after two honest writes. Plutus (the only engine with a
    // compact layer) must detect the stale counter on the read-back fill;
    // the others must report the fault as not-applied, never as an escape.
    let victim = SectorAddr::new(0);
    for (name, factory) in sim_factories() {
        let trace = evict_then_read_trace(victim, 2);
        let last = trace.accesses.len() as u64;
        let schedule = one_fault(
            FaultTrigger::AtAccess(last),
            victim,
            MetaFault::RollbackCompact { value: 0 },
        );
        let records = run_with_fault(factory.as_ref(), trace, schedule);
        assert_eq!(records.len(), 1, "{name}: expected one fault record");
        match (name, records[0].outcome) {
            ("plutus", FaultOutcome::Detected { .. }) => {}
            ("plutus", outcome) => panic!("plutus: compact rollback not detected: {outcome:?}"),
            (_, FaultOutcome::NotApplied) => {}
            (_, outcome) => panic!("{name}: keeps no compact counters, got {outcome:?}"),
        }
    }
}

#[test]
fn midrun_bmt_node_tamper_is_adjudicated_per_engine() {
    // Strike just before the final read: tamper the BMT node covering the
    // victim's split counter. PSSM and common-counters (victim region is
    // dirty) must catch it at the counter re-fetch; Plutus's victim is
    // still compact-served (a writeback-coalesced pair of writes never
    // saturates the 3-bit counter), so its main BMT is dead state for this
    // sector and the fault must be reported as not-applied — never as an
    // escape.
    let victim = SectorAddr::new(0);
    for (name, factory) in sim_factories() {
        let trace = evict_then_read_trace(victim, 2);
        let last = trace.accesses.len() as u64;
        let schedule = one_fault(
            FaultTrigger::AtAccess(last),
            victim,
            MetaFault::TamperBmtNode,
        );
        let records = run_with_fault(factory.as_ref(), trace, schedule);
        assert_eq!(records.len(), 1, "{name}: expected one fault record");
        match (name, records[0].outcome) {
            ("plutus", FaultOutcome::NotApplied) => {}
            ("plutus", outcome) => {
                panic!("plutus: main BMT is dead while compact-served, got {outcome:?}")
            }
            (_, FaultOutcome::Detected { layer, latency }) => {
                assert!(
                    matches!(layer, DetectionLayer::Bmt { .. }),
                    "{name}: wrong detecting layer {layer:?}"
                );
                assert!(latency > 0, "{name}: detection latency must be positive");
            }
            (_, outcome) => panic!("{name}: BMT tamper not detected: {outcome:?}"),
        }
    }
}

#[test]
fn saturated_plutus_detects_injected_bmt_tamper() {
    // Once the compact counter saturates, the original counter (and the
    // main BMT over it) become live again — the same injected fault that
    // is a no-op pre-saturation must now land and be caught on re-fetch.
    let mut engine = PlutusEngine::new(PlutusConfig::test_small());
    let mut mem = BackingMemory::new();
    let addr = SectorAddr::new(0);
    engine.on_writeback(addr, &[1; 32], &mut mem);
    assert!(
        !engine.inject_fault(addr, MetaFault::TamperBmtNode),
        "BMT fault must not apply while the compact layer serves the counter"
    );
    // Drive past compact saturation, then evict the victim's counter
    // sector. Unsaturated sectors never touch the original counter cache
    // under Plutus, so the evicting fillers must be saturated too.
    for i in 1..9u8 {
        engine.on_writeback(addr, &[i; 32], &mut mem);
    }
    for i in 1..40u64 {
        let filler = SectorAddr::new(i * 128 * 32);
        for w in 0..9u8 {
            engine.on_writeback(filler, &[w; 32], &mut mem);
        }
    }
    assert!(engine.inject_fault(addr, MetaFault::TamperBmtNode));
    let fill = engine.on_fill(addr, &mut mem);
    assert!(
        matches!(fill.violation, Some(v) if matches!(v.layer(), DetectionLayer::Bmt { .. })),
        "saturated BMT tamper undetected or wrong layer: {:?}",
        fill.violation
    );
}

#[test]
fn cycle_scheduled_counter_rollback_respects_liveness() {
    // An AtCycle(1) strike lands before the first access: roll back the
    // split counter of a read-only (never-written) sector. PSSM always
    // consults its per-sector counters, so the BMT leaf check at counter
    // fetch catches the rollback; common-counters knows the region is
    // clean (counter is zero by construction) and Plutus serves the live
    // counter from the compact layer, so for both the stored split counter
    // is dead state and the fault must be reported as not-applied.
    let victim = SectorAddr::new(0x40);
    for (name, factory) in sim_factories() {
        let mut trace = Trace::new("cycle-fault");
        trace.set_initial(victim, *b"read-only victim sector contents");
        for i in 1..=8u64 {
            let filler = SectorAddr::new(0x1_0000 + i * 32);
            trace.set_initial(filler, [i as u8; 32]);
            trace.push_read(filler, 0, 1);
        }
        trace.push_read(victim, 0, 1);
        let schedule = one_fault(
            FaultTrigger::AtCycle(1),
            victim,
            MetaFault::RollbackCounter { value: 3 },
        );
        let records = run_with_fault(factory.as_ref(), trace, schedule);
        assert_eq!(records.len(), 1, "{name}: expected one fault record");
        match (name, records[0].outcome) {
            ("pssm", FaultOutcome::Detected { layer, .. }) => {
                assert!(
                    matches!(layer, DetectionLayer::Bmt { .. }),
                    "pssm detects counter rollback through the BMT, got {layer:?}"
                );
            }
            ("pssm", outcome) => panic!("pssm: rollback not detected: {outcome:?}"),
            (_, FaultOutcome::NotApplied) => {}
            (_, outcome) => panic!("{name}: dead split counter, got {outcome:?}"),
        }
    }
}

#[test]
fn honest_execution_raises_no_violations() {
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..3000 {
            let addr = SectorAddr::new(rng.gen_range(0..512u64) * 32);
            if rng.gen_bool(0.4) {
                engine.on_writeback(addr, &[rng.gen::<u8>(); 32], &mut mem);
            } else {
                let fill = engine.on_fill(addr, &mut mem);
                assert!(fill.violation.is_none(), "{name}: false positive at {addr}");
            }
        }
    }
}
