//! Adversarial integration tests: every engine must detect data
//! tampering, data replay, MAC tampering, and counter rollback — and the
//! probability machinery behind Plutus's value-based verification must
//! reject random (tamper-diffused) data in practice.

use gpu_sim::{BackingMemory, SectorAddr, SecurityEngine};
use plutus_core::{PlutusConfig, PlutusEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_mem::{CommonCountersEngine, PssmEngine, SecureMemConfig};

fn victims() -> Vec<(&'static str, Box<dyn SecurityEngine>)> {
    vec![
        (
            "pssm",
            Box::new(PssmEngine::new(SecureMemConfig::test_small())),
        ),
        (
            "common-counters",
            Box::new(CommonCountersEngine::new(SecureMemConfig::test_small())),
        ),
        (
            "plutus",
            Box::new(PlutusEngine::new(PlutusConfig::test_small())),
        ),
    ]
}

#[test]
fn single_bit_flips_are_detected_at_any_position() {
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let addr = SectorAddr::new(0x400);
        engine.on_writeback(addr, b"sensitive cloud workload output!", &mut mem);
        for byte in [0usize, 7, 15, 16, 31] {
            for bit in [0u8, 3, 7] {
                let mut mask = [0u8; 32];
                mask[byte] = 1 << bit;
                assert!(mem.corrupt(addr, &mask));
                let fill = engine.on_fill(addr, &mut mem);
                assert!(
                    fill.violation.is_some(),
                    "{name}: flip at byte {byte} bit {bit} undetected"
                );
                mem.corrupt(addr, &mask); // restore
            }
        }
    }
}

#[test]
fn multi_sector_garbage_rewrites_are_detected() {
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..16u64 {
            engine.on_writeback(SectorAddr::new(i * 32), &[i as u8; 32], &mut mem);
        }
        for i in 0..16u64 {
            let addr = SectorAddr::new(i * 32);
            let mut garbage = [0u8; 32];
            rng.fill(&mut garbage[..]);
            mem.write(addr, garbage);
            let fill = engine.on_fill(addr, &mut mem);
            assert!(
                fill.violation.is_some(),
                "{name}: garbage rewrite at {addr} undetected"
            );
        }
    }
}

#[test]
fn replay_of_stale_ciphertext_is_detected() {
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let addr = SectorAddr::new(0x800);
        engine.on_writeback(addr, &[1; 32], &mut mem);
        let stale = mem.snapshot(addr).unwrap();
        engine.on_writeback(addr, &[2; 32], &mut mem);
        mem.replay(addr, stale);
        let fill = engine.on_fill(addr, &mut mem);
        assert!(fill.violation.is_some(), "{name}: replay undetected");
    }
}

#[test]
fn cross_address_splicing_is_detected() {
    // Move valid ciphertext from one address to another (spoof/splice).
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let a = SectorAddr::new(0x1000);
        let b = SectorAddr::new(0x2000);
        engine.on_writeback(a, &[0x11; 32], &mut mem);
        engine.on_writeback(b, &[0x22; 32], &mut mem);
        let stolen = mem.snapshot(a).unwrap();
        mem.write(b, stolen);
        let fill = engine.on_fill(b, &mut mem);
        assert!(fill.violation.is_some(), "{name}: splice undetected");
    }
}

#[test]
fn mac_store_tampering_is_detected() {
    let mut engine = PssmEngine::new(SecureMemConfig::test_small());
    let mut mem = BackingMemory::new();
    let addr = SectorAddr::new(0);
    engine.on_writeback(addr, &[5; 32], &mut mem);
    engine.macs_mut().tamper(addr);
    let fill = engine.on_fill(addr, &mut mem);
    assert!(fill.violation.is_some(), "MAC tamper undetected");
}

#[test]
fn counter_rollback_is_detected_after_eviction() {
    let mut engine = PlutusEngine::new(PlutusConfig::test_small());
    let mut mem = BackingMemory::new();
    let addr = SectorAddr::new(0);
    // Drive past compact saturation so the original counter is live.
    for i in 0..9u8 {
        engine.on_writeback(addr, &[i; 32], &mut mem);
    }
    // Evict the counter sector.
    for i in 1..80u64 {
        engine.on_fill(SectorAddr::new(i * 128 * 32), &mut mem);
    }
    engine.counters_mut().tamper_minor(addr, 0);
    let fill = engine.on_fill(addr, &mut mem);
    assert!(fill.violation.is_some(), "counter rollback undetected");
}

#[test]
fn compact_counter_tampering_is_detected() {
    let mut engine = PlutusEngine::new(PlutusConfig::test_small());
    let mut mem = BackingMemory::new();
    let addr = SectorAddr::new(0);
    engine.on_writeback(addr, &[1; 32], &mut mem);
    engine.on_writeback(addr, &[2; 32], &mut mem);
    // Evict the compact block by touching many distinct blocks.
    for i in 1..200u64 {
        engine.on_fill(SectorAddr::new(i * 64 * 32), &mut mem);
    }
    engine.compact_mut().unwrap().tamper(addr, 0);
    let fill = engine.on_fill(addr, &mut mem);
    assert!(
        fill.violation.is_some(),
        "compact counter rollback undetected"
    );
}

#[test]
fn tampered_data_never_passes_value_verification() {
    // The statistical heart of the paper: decrypting tampered AES-XTS
    // ciphertext yields uniform noise, which must not clear the 3-of-4
    // value-cache rule. 5000 tamper trials, zero tolerated acceptances
    // (expected rate < 2^-56 per unit).
    let mut engine = PlutusEngine::new(PlutusConfig::test_small());
    let mut mem = BackingMemory::new();
    let mut rng = StdRng::seed_from_u64(7);
    // Warm the value cache with honest, highly regular data.
    for i in 0..256u64 {
        let addr = SectorAddr::new(i * 32);
        engine.on_writeback(addr, &[(i % 7) as u8; 32], &mut mem);
        engine.on_fill(addr, &mut mem);
    }
    let mut undetected = 0;
    for trial in 0..5000u64 {
        let addr = SectorAddr::new((trial % 256) * 32);
        let mut mask = [0u8; 32];
        rng.fill(&mut mask[..]);
        mem.corrupt(addr, &mask);
        let fill = engine.on_fill(addr, &mut mem);
        if fill.violation.is_none() {
            undetected += 1;
        }
        mem.corrupt(addr, &mask); // restore
    }
    assert_eq!(
        undetected, 0,
        "{undetected}/5000 tampered sectors passed verification"
    );
}

#[test]
fn honest_execution_raises_no_violations() {
    for (name, mut engine) in victims() {
        let mut mem = BackingMemory::new();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..3000 {
            let addr = SectorAddr::new(rng.gen_range(0..512u64) * 32);
            if rng.gen_bool(0.4) {
                engine.on_writeback(addr, &[rng.gen::<u8>(); 32], &mut mem);
            } else {
                let fill = engine.on_fill(addr, &mut mem);
                assert!(fill.violation.is_none(), "{name}: false positive at {addr}");
            }
        }
    }
}
