//! Functional equivalence: every security engine must behave as a plain
//! memory — whatever is written is read back, byte for byte, regardless of
//! eviction order, counter overflows, compact-counter saturation, or
//! adaptive block disables. The reference model is a `HashMap`.

use gpu_sim::{BackingMemory, SectorAddr, SecurityEngine};
use plutus_core::{CompactKind, PlutusConfig, PlutusEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_mem::{CommonCountersEngine, PssmEngine, SecureMemConfig};
use std::collections::HashMap;

fn engines() -> Vec<(String, Box<dyn SecurityEngine>)> {
    let mem = SecureMemConfig::test_small();
    let mut list: Vec<(String, Box<dyn SecurityEngine>)> = vec![
        ("pssm".into(), Box::new(PssmEngine::new(mem.clone()))),
        (
            "pssm-mac4".into(),
            Box::new(PssmEngine::new(SecureMemConfig {
                mac_bytes: 4,
                ..mem.clone()
            })),
        ),
        (
            "pssm-all32".into(),
            Box::new(PssmEngine::new(SecureMemConfig {
                ctr_fetch_bytes: 32,
                bmt_node_bytes: 32,
                ..mem.clone()
            })),
        ),
        (
            "common-counters".into(),
            Box::new(CommonCountersEngine::new(mem.clone())),
        ),
        (
            "plutus".into(),
            Box::new(PlutusEngine::new(PlutusConfig::test_small())),
        ),
    ];
    for kind in [
        CompactKind::TwoBit,
        CompactKind::ThreeBit,
        CompactKind::Adaptive3,
    ] {
        let mut cfg = PlutusConfig::compact_only(kind);
        cfg.mem = SecureMemConfig::test_small();
        list.push((
            format!("compact-{}", kind.label()),
            Box::new(PlutusEngine::new(cfg)),
        ));
    }
    let mut no_tree = PlutusConfig::test_small();
    no_tree.mem.disable_tree = true;
    list.push((
        "plutus-no-tree".into(),
        Box::new(PlutusEngine::new(no_tree)),
    ));
    list
}

/// Drives `ops` random write/read operations against one engine and the
/// reference model.
fn fuzz_engine(name: &str, engine: &mut dyn SecurityEngine, seed: u64, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = BackingMemory::new();
    let mut reference: HashMap<u64, [u8; 32]> = HashMap::new();

    // Pre-install an initial image over part of the space.
    for i in 0..64u64 {
        let addr = SectorAddr::new(i * 32);
        let data = [i as u8; 32];
        engine.install(addr, &data, &mut mem);
        reference.insert(addr.raw(), data);
    }

    // Cluster writes on a small set of sectors so compact counters
    // saturate and split-counter groups overflow during the run.
    let hot_sectors = 48u64;
    let cold_sectors = 1024u64;
    for op in 0..ops {
        let sector = if rng.gen_bool(0.7) {
            SectorAddr::new(rng.gen_range(0..hot_sectors) * 32)
        } else {
            SectorAddr::new(rng.gen_range(0..cold_sectors) * 32)
        };
        if rng.gen_bool(0.5) {
            let mut data = [0u8; 32];
            rng.fill(&mut data[..]);
            // Bias toward repeated values so the value cache sees reuse.
            if rng.gen_bool(0.5) {
                data = [rng.gen_range(0..4u8); 32];
            }
            engine.on_writeback(sector, &data, &mut mem);
            reference.insert(sector.raw(), data);
        } else {
            let fill = engine.on_fill(sector, &mut mem);
            let expected = reference.get(&sector.raw()).copied().unwrap_or([0; 32]);
            assert_eq!(
                fill.plaintext, expected,
                "{name}: wrong plaintext at {sector} on op {op}"
            );
            assert!(
                fill.violation.is_none(),
                "{name}: false violation at {sector} on op {op}: {:?}",
                fill.violation
            );
        }
    }

    // Final sweep: every recorded sector reads back.
    for (&addr, &expected) in &reference {
        let fill = engine.on_fill(SectorAddr::new(addr), &mut mem);
        assert_eq!(
            fill.plaintext, expected,
            "{name}: final sweep mismatch at {addr:#x}"
        );
        assert!(
            fill.violation.is_none(),
            "{name}: false violation in final sweep"
        );
    }
}

#[test]
fn all_engines_match_reference_memory() {
    for (name, mut engine) in engines() {
        fuzz_engine(&name, engine.as_mut(), 0xfeed, 4_000);
    }
}

#[test]
fn heavy_write_clustering_exercises_overflow_paths() {
    // 4000+ writes over 48 hot sectors ≈ 40+ writes per sector: compact
    // counters saturate (3rd/7th write) and some groups overflow the 7-bit
    // minor. A second seed shifts the interleaving.
    for (name, mut engine) in engines() {
        fuzz_engine(&name, engine.as_mut(), 0xbeef, 6_000);
    }
}

#[test]
fn split_counter_group_overflow_preserves_group_contents() {
    // Direct, deterministic overflow: 130 writes to one sector forces the
    // shared major counter to bump and every group member to re-encrypt.
    for (name, mut engine) in engines() {
        let mut mem = BackingMemory::new();
        let neighbor = SectorAddr::new(3 * 32);
        let victim = SectorAddr::new(0);
        engine.on_writeback(neighbor, &[0xaa; 32], &mut mem);
        for i in 0..130u32 {
            engine.on_writeback(victim, &[(i % 251) as u8; 32], &mut mem);
        }
        let f = engine.on_fill(neighbor, &mut mem);
        assert_eq!(
            f.plaintext, [0xaa; 32],
            "{name}: neighbor corrupted by overflow"
        );
        assert!(
            f.violation.is_none(),
            "{name}: overflow raised a false violation"
        );
        let f = engine.on_fill(victim, &mut mem);
        assert_eq!(f.plaintext, [129u8; 32], "{name}: victim lost last write");
        assert!(f.violation.is_none());
    }
}
